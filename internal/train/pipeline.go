// Pipelined asynchronous training: the paper's per-step breakdown (Table III)
// splits each iteration into NF (neighbor finding), FS (feature slicing), AS
// (adaptive sampling) and PP (propagation). NF and FS read only the graph and
// the feature stores — never the model — so they can be computed for upcoming
// batches while the current batch's forward/backward/step runs. The Pipeline
// below does exactly that: a single prefetch goroutine runs the prepare stage
// (prepareBatch) for future batches in training order, a channel of capacity
// PrefetchDepth buffers them, and the consumer resolves the parameter-
// dependent remainder (finishBatch + PP) one batch at a time. Steady-state
// wall time per step approaches max(prepare, consume) instead of their sum.
//
// Determinism: with AdaBatch off the pipelined loop produces bitwise-
// identical losses to TrainStep. Producer-side draws (negative sampling,
// outer-hop finder streams) happen on the single prefetch goroutine in
// training order; consumer-side draws (the adaptive Selection, finder
// streams for the hops below it) happen on a *dedicated* finder instance
// (Trainer.finderC) and the sampler's own RNG, in consume order — which is
// also training order. Every stream is therefore a function of its own call
// sequence, never of how the goroutines interleave.
// TestPipelinedMatchesSynchronous and
// TestPipelinedAdaNeighborMatchesSynchronous assert the equivalence at
// depths 1 and 2; TestPipelinedRunsAreReproducible asserts fixed-seed
// repeatability under concurrency.
//
// Bounded staleness: with AdaBatch on, a prefetched batch was drawn from
// importance scores that miss the updates of the ≤ PrefetchDepth+1 steps
// still in flight (the channel holds PrefetchDepth batches and one more may
// be under construction). With AdaNeighbor on, the Selection is resolved on
// the consumer side against current sampler parameters, keeping the
// co-training gradient path exact; only the m-candidate staging is early.
package train

import (
	"sync"
	"time"
)

// Pipeline overlaps mini-batch construction with model compute. Create one
// with Trainer.NewPipeline, drive it with Step, and Close it before touching
// the trainer from the same goroutine again (TrainStep, eval, a new
// pipeline). At most one pipeline may be open per trainer.
type Pipeline struct {
	t    *Trainer
	out  chan *prepared
	stop chan struct{}
	wg   sync.WaitGroup

	closed bool
}

// NewPipeline starts a prefetching producer that prepares up to limit
// batches (0 = unbounded) ahead of the consumer, keeping at most
// Cfg.PrefetchDepth of them buffered.
func (t *Trainer) NewPipeline(limit int) *Pipeline {
	depth := t.Cfg.PrefetchDepth
	if depth < 1 {
		depth = 1
	}
	p := &Pipeline{
		t:    t,
		out:  make(chan *prepared, depth),
		stop: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.produce(limit)
	return p
}

// produce is the prefetch loop: prepare batches in training order and hand
// them to the consumer, stopping at limit or on Close.
func (p *Pipeline) produce(limit int) {
	defer p.wg.Done()
	defer close(p.out)
	for n := 0; limit == 0 || n < limit; n++ {
		select {
		case <-p.stop:
			return
		default:
		}
		edges := p.t.nextBatchEdges()
		if len(edges) == 0 {
			return
		}
		pb := p.t.prepareBatch(edges)
		select {
		case p.out <- pb:
		case <-p.stop:
			p.t.releasePrepared(pb)
			return
		}
	}
}

// Step consumes the next prefetched batch and runs the training step on it,
// returning the model loss. ok is false once the pipeline is exhausted
// (limit reached or closed).
func (p *Pipeline) Step() (loss float64, ok bool) {
	pb, ok := <-p.out
	if !ok {
		return 0, false
	}
	return p.t.consume(pb), true
}

// Close shuts the producer down and recycles any batches still in flight
// without training on them. Safe to call multiple times; always call it
// before using the trainer synchronously again. Note that the producer has
// already advanced the trainer's batch cursor (and, with AdaBatch, its
// selector RNG) past the discarded batches.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
	for pb := range p.out {
		p.t.releasePrepared(pb)
	}
	p.wg.Wait()
}

// TrainEpochPipelined is TrainEpoch with construction overlapped: same
// batches, same updates, same epoch bookkeeping — losses are bitwise equal
// to the synchronous loop when AdaBatch is off.
func (t *Trainer) TrainEpochPipelined() EpochResult {
	steps := (t.DS.TrainEnd + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
	res := t.trainPipelined(steps)
	t.endEpoch()
	return res
}

// trainPipelined consumes exactly steps batches through a fresh pipeline.
func (t *Trainer) trainPipelined(steps int) EpochResult {
	start := time.Now()
	p := t.NewPipeline(steps)
	defer p.Close()
	var total float64
	n := 0
	for {
		loss, ok := p.Step()
		if !ok {
			break
		}
		total += loss
		n++
	}
	mean := 0.0
	if n > 0 {
		mean = total / float64(n)
	}
	return EpochResult{MeanLoss: mean, Steps: n, Duration: time.Since(start)}
}

// RunPipelined mirrors Run with the pipelined epoch loop.
func (t *Trainer) RunPipelined() (losses []float64, valMRR, testMRR float64) {
	for e := 0; e < t.Cfg.Epochs; e++ {
		losses = append(losses, t.TrainEpochPipelined().MeanLoss)
	}
	return losses, t.EvalMRR(SplitVal), t.EvalMRR(SplitTest)
}
