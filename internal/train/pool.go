package train

import (
	"sync"

	"taser/internal/adaptive"
	"taser/internal/models"
	"taser/internal/sampler"
	"taser/internal/tensor"
)

// blockKey identifies a LayerBlock shape class. In steady state a training
// run only ever materializes a handful of shapes (one per hop), so the free
// lists hit on every step after warm-up.
type blockKey struct{ t, budget, edgeDim int }

// csKey identifies a CandidateSet shape class.
type csKey struct{ b, m, nodeDim, edgeDim int }

// buildPool recycles every buffer the minibatch construction path
// materializes — layer blocks, candidate sets, finder results, leaf feature
// matrices, and the per-step target/id scratch slices — so the steady-state
// build path is (near-)allocation-free. It is safe for concurrent use: the
// pipelined loop acquires buffers on the prefetch goroutine and releases them
// on the consumer after the optimizer step.
//
// Ownership is move-semantics: a Get transfers the buffer to the caller, a
// Put transfers it back. Buffers handed to external callers (e.g. through
// Trainer.BuildMiniBatch) are simply never returned; the pool then allocates
// fresh ones, which keeps the exported API leak-proof.
type buildPool struct {
	mu      sync.Mutex
	blocks  map[blockKey][]*models.LayerBlock
	sets    map[csKey][]*adaptive.CandidateSet
	results []*sampler.Result
	mats    map[int][]*tensor.Matrix // keyed by column count
	targets sliceList[sampler.Target]
	ids     sliceList[int32]
	ints    sliceList[int]
}

// sliceList is a free list of []T scratch slices. get returns an empty slice
// with capacity ≥ hint; put takes one back. Callers synchronize (buildPool
// wraps every access in its mutex).
type sliceList[T any] struct {
	free [][]T
}

func (l *sliceList[T]) get(hint int) []T {
	if n := len(l.free); n > 0 {
		s := l.free[n-1]
		l.free = l.free[:n-1]
		if cap(s) >= hint {
			return s[:0]
		}
	}
	return make([]T, 0, hint)
}

func (l *sliceList[T]) put(s []T) {
	if s != nil {
		l.free = append(l.free, s)
	}
}

func newBuildPool() *buildPool {
	return &buildPool{
		blocks: make(map[blockKey][]*models.LayerBlock),
		sets:   make(map[csKey][]*adaptive.CandidateSet),
		mats:   make(map[int][]*tensor.Matrix),
	}
}

// getBlock returns a zeroed t×budget layer block with edge width edgeDim.
func (p *buildPool) getBlock(t, budget, edgeDim int) *models.LayerBlock {
	key := blockKey{t, budget, edgeDim}
	p.mu.Lock()
	list := p.blocks[key]
	if n := len(list); n > 0 {
		blk := list[n-1]
		p.blocks[key] = list[:n-1]
		p.mu.Unlock()
		blk.Reset(t, budget, edgeDim)
		return blk
	}
	p.mu.Unlock()
	return models.NewLayerBlock(t, budget, edgeDim)
}

func (p *buildPool) putBlock(blk *models.LayerBlock) {
	if blk == nil {
		return
	}
	key := blockKey{blk.NumTargets, blk.Budget, blk.EdgeFeat.Cols}
	p.mu.Lock()
	p.blocks[key] = append(p.blocks[key], blk)
	p.mu.Unlock()
}

// getSet returns a zeroed b×m candidate set.
func (p *buildPool) getSet(b, m, nodeDim, edgeDim int) *adaptive.CandidateSet {
	key := csKey{b, m, nodeDim, edgeDim}
	p.mu.Lock()
	list := p.sets[key]
	if n := len(list); n > 0 {
		cs := list[n-1]
		p.sets[key] = list[:n-1]
		p.mu.Unlock()
		cs.Reset(b, m, nodeDim, edgeDim)
		return cs
	}
	p.mu.Unlock()
	return adaptive.NewCandidateSet(b, m, nodeDim, edgeDim)
}

func (p *buildPool) putSet(cs *adaptive.CandidateSet) {
	if cs == nil {
		return
	}
	key := csKey{cs.B, cs.M, cs.NodeFeat.Cols, cs.EdgeFeat.Cols}
	p.mu.Lock()
	p.sets[key] = append(p.sets[key], cs)
	p.mu.Unlock()
}

// getResult returns a finder result; callers shape it via Finder.Sample.
func (p *buildPool) getResult() *sampler.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.results); n > 0 {
		res := p.results[n-1]
		p.results = p.results[:n-1]
		return res
	}
	return &sampler.Result{}
}

func (p *buildPool) putResult(res *sampler.Result) {
	if res == nil {
		return
	}
	p.mu.Lock()
	p.results = append(p.results, res)
	p.mu.Unlock()
}

// getMat returns a zeroed rows×cols matrix.
func (p *buildPool) getMat(rows, cols int) *tensor.Matrix {
	p.mu.Lock()
	list := p.mats[cols]
	if n := len(list); n > 0 {
		m := list[n-1]
		p.mats[cols] = list[:n-1]
		p.mu.Unlock()
		return m.Resize(rows, cols)
	}
	p.mu.Unlock()
	return tensor.New(rows, cols)
}

func (p *buildPool) putMat(m *tensor.Matrix) {
	if m == nil {
		return
	}
	p.mu.Lock()
	p.mats[m.Cols] = append(p.mats[m.Cols], m)
	p.mu.Unlock()
}

// getTargets returns an empty target slice with capacity ≥ hint.
func (p *buildPool) getTargets(hint int) []sampler.Target {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.targets.get(hint)
}

func (p *buildPool) putTargets(s []sampler.Target) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets.put(s)
}

// getIDs returns an empty int32 slice with capacity ≥ hint.
func (p *buildPool) getIDs(hint int) []int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ids.get(hint)
}

func (p *buildPool) putIDs(s []int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ids.put(s)
}

// getInts returns an empty int slice with capacity ≥ hint.
func (p *buildPool) getInts(hint int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ints.get(hint)
}

func (p *buildPool) putInts(s []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ints.put(s)
}
