// Package train orchestrates TGNN training and evaluation: mini-batch
// construction through the bi-level sampling pipeline (neighbor finder →
// adaptive neighbor sampler), feature slicing through the cached feature
// stores, the self-supervised link-prediction objective, co-training of the
// adaptive sampler (Algorithm 1), and MRR evaluation (§IV-A).
//
// The per-phase runtime breakdown mirrors Table III's columns: NF (neighbor
// finding), AS (adaptive neighbor sampling), FS (feature slicing, real copy
// time plus the modeled PCIe/VRAM transfer time), and PP (propagation).
package train

import (
	"fmt"
	"sync"
	"time"

	"taser/internal/adaptive"
	"taser/internal/autograd"
	"taser/internal/cache"
	"taser/internal/datasets"
	"taser/internal/device"
	"taser/internal/featstore"
	"taser/internal/mathx"
	"taser/internal/models"
	"taser/internal/nn"
	"taser/internal/sampler"
	"taser/internal/stats"
	"taser/internal/tensor"
)

// ModelKind selects the backbone.
type ModelKind string

const (
	// ModelTGAT is the 2-layer attention backbone (uniform finder policy).
	ModelTGAT ModelKind = "tgat"
	// ModelGraphMixer is the 1-layer mixer backbone (most-recent policy).
	ModelGraphMixer ModelKind = "graphmixer"
)

// FinderKind selects the temporal neighbor finder.
type FinderKind string

const (
	// FinderOrigin is the sequential reference finder.
	FinderOrigin FinderKind = "origin"
	// FinderTGL is the chronological-order parallel CPU finder.
	FinderTGL FinderKind = "tgl"
	// FinderGPU is TASER's block-parallel finder on the device simulator.
	FinderGPU FinderKind = "gpu"
)

// Config holds every knob of a training run. Zero values are filled with the
// paper's defaults by Normalize.
type Config struct {
	Model     ModelKind
	Finder    FinderKind
	Hidden    int // hidden/embedding width (paper: 100; scaled default 32)
	TimeDim   int
	N         int // supporting neighbors n (paper default 10)
	M         int // candidate budget m for adaptive sampling (paper default 25)
	BatchSize int // positive edges per batch (paper: 600; scaled default 200)
	Epochs    int
	LR        float64

	// PrefetchDepth bounds how many upcoming mini-batches the pipelined
	// training loop (Pipeline, TrainEpochPipelined) stages ahead of the
	// consumer: prepared batches wait in a channel of this capacity while one
	// more may be under construction, so with AdaBatch the importance
	// selector's draws are at most PrefetchDepth+1 steps stale (DESIGN.md).
	// Default 2 (double buffering). The synchronous TrainStep ignores it.
	PrefetchDepth int

	AdaBatch    bool             // temporal adaptive mini-batch selection (§III-A)
	AdaNeighbor bool             // temporal adaptive neighbor sampling (§III-B)
	Gamma       float64          // Eq. 11 uniform floor
	Decoder     adaptive.Decoder // sampler head
	// AdaAllLayers applies adaptive neighbor sampling at every hop
	// (Algorithm 1 as written); the default applies it at the outermost hop
	// only, which preserves the accuracy mechanism at a fraction of the
	// cost (see DESIGN.md).
	AdaAllLayers bool

	CacheRatio  float64 // fraction of edge-feature rows resident in VRAM
	CacheEps    float64 // Algorithm 3 swap threshold ε (fraction of k)
	CachePolicy string  // "freq" (default, Algorithm 3) or "lru" (ablation)

	// FinderPolicy overrides the static sampling policy ("" = the backbone's
	// default: uniform for TGAT, most-recent for GraphMixer). "invts" is
	// TGAT's inverse-timespan heuristic, the human-defined denoising
	// baseline the paper contrasts adaptive sampling against (§I).
	FinderPolicy string

	// DisableTE/FE/IE switch off individual neighbor-encoder components for
	// the §IV-B encoder ablation (zero value = enabled).
	DisableTE, DisableFE, DisableIE bool

	EvalNegatives int // MRR negatives (paper: 49)
	MaxEvalEdges  int // cap on evaluated edges (0 = all)

	Seed uint64
}

// Normalize fills defaults in place and returns the config for chaining.
func (c Config) Normalize() Config {
	if c.Model == "" {
		c.Model = ModelTGAT
	}
	if c.Finder == "" {
		c.Finder = FinderGPU
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.TimeDim == 0 {
		c.TimeDim = 16
	}
	if c.N == 0 {
		c.N = 10
	}
	if c.M == 0 {
		c.M = 25
	}
	if c.BatchSize == 0 {
		c.BatchSize = 200
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 2
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.1
	}
	if c.CacheEps == 0 {
		c.CacheEps = 0.7
	}
	if c.EvalNegatives == 0 {
		c.EvalNegatives = 49
	}
	return c
}

// Trainer binds a dataset, a backbone, the sampling pipeline and feature
// stores into a runnable training/evaluation harness.
type Trainer struct {
	Cfg Config
	DS  *datasets.Dataset

	Model models.TGNN
	Pred  *models.EdgePredictor

	Selector *adaptive.MiniBatchSelector // nil unless AdaBatch
	Sampler  *adaptive.NeighborSampler   // nil unless AdaNeighbor

	Finder sampler.Finder
	// finderC is an independent finder instance (own RNG streams / call
	// counter / TGL pointer array) for the hops resolved consumer-side when
	// adaptive neighbor sampling is on. Dedicating an instance to each side
	// of the pipeline keeps every finder's sampling stream a function of its
	// own call order — so pipelined adaptive training is deterministic for a
	// fixed seed and bitwise-equal to the synchronous loop, instead of
	// depending on how producer and consumer interleave on one shared stream.
	finderC   sampler.Finder
	EdgeStore *featstore.Store
	NodeStore *featstore.Store
	Xfer      *device.XferStats

	OptModel   *nn.Adam
	OptSampler *nn.Adam

	Timer *stats.Timer
	rng   *mathx.RNG

	policy sampler.Policy
	cursor int // chronological batch cursor (baseline mini-batching)

	// pool recycles every minibatch-construction buffer. Each finder
	// instance gets its own mutex (finders keep mutable RNG/pointer state):
	// producer-side and consumer-side neighbor finding touch disjoint
	// instances and may overlap, while concurrent callers of one instance —
	// today only hypothetical multi-producer extensions — serialize.
	pool      *buildPool
	finderMuP sync.Mutex // guards Finder
	finderMuC sync.Mutex // guards finderC

	// Consumer-side step scratch (reused across consume calls, which are
	// serialized by construction).
	srcIdx, dstIdx []int32
	labels         []float64
	posLogits      []float64

	// Reusable arena-backed autograd graphs (DESIGN.md §7): gM records the
	// model forward–backward, gS the adaptive sampler's. Both are owned by
	// the consumer side (consume, finishBatch, eval), which is serialized by
	// construction; each is Reset at checkout, so everything a step produced
	// stays readable until the next step begins and anything that must
	// survive (losses, logits, importance scores) is copied out before then.
	gM, gS *autograd.Graph

	// freshGraphs disables graph/arena reuse: every checkout returns a new
	// unpooled graph. Tests use it to pin the reused path bitwise-equal to
	// the from-scratch path.
	freshGraphs bool
}

// modelGraph checks out the model graph for one forward(-backward) pass,
// ending the previous pass's checkouts.
func (t *Trainer) modelGraph() *autograd.Graph {
	if t.freshGraphs {
		return autograd.New()
	}
	if t.gM == nil {
		t.gM = autograd.NewReusable()
	}
	t.gM.Reset()
	return t.gM
}

// samplerGraph is modelGraph's counterpart for the adaptive sampler's tape
// (a separate graph so the sample loss backward never replays model ops).
func (t *Trainer) samplerGraph() *autograd.Graph {
	if t.freshGraphs {
		return autograd.New()
	}
	if t.gS == nil {
		t.gS = autograd.NewReusable()
	}
	t.gS.Reset()
	return t.gS
}

// New builds a trainer for the dataset under cfg.
func New(cfg Config, ds *datasets.Dataset) (*Trainer, error) {
	cfg = cfg.Normalize()
	rng := mathx.NewRNG(cfg.Seed)
	t := &Trainer{
		Cfg: cfg, DS: ds, Timer: stats.NewTimer(), rng: rng,
		Xfer: device.NewXferStats(), pool: newBuildPool(),
	}

	nodeDim := ds.Spec.NodeDim
	edgeDim := ds.Spec.EdgeDim
	switch cfg.Model {
	case ModelTGAT:
		t.Model = models.NewTGAT(models.TGATConfig{
			NodeDim: nodeDim, EdgeDim: edgeDim, HiddenDim: cfg.Hidden,
			TimeDim: cfg.TimeDim, Layers: 2, Budget: cfg.N,
		}, rng.Split())
		t.policy = sampler.Uniform
	case ModelGraphMixer:
		t.Model = models.NewGraphMixer(models.GraphMixerConfig{
			NodeDim: nodeDim, EdgeDim: edgeDim, HiddenDim: cfg.Hidden,
			TimeDim: cfg.TimeDim, Budget: cfg.N,
		}, rng.Split())
		t.policy = sampler.MostRecent
	default:
		return nil, fmt.Errorf("train: unknown model %q", cfg.Model)
	}
	t.Pred = models.NewEdgePredictor(cfg.Hidden, rng.Split())

	switch cfg.FinderPolicy {
	case "":
		// keep the backbone default set above
	case "uniform":
		t.policy = sampler.Uniform
	case "recent":
		t.policy = sampler.MostRecent
	case "invts":
		t.policy = sampler.InverseTimespan
	default:
		return nil, fmt.Errorf("train: unknown finder policy %q", cfg.FinderPolicy)
	}

	// finderC's randomness derives from cfg.Seed directly rather than from
	// rng.Split(), so adding the second instance does not advance the
	// trainer stream and every downstream seed (selector, sampler, negative
	// draws) stays exactly where it was before finderC existed.
	switch cfg.Finder {
	case FinderOrigin:
		t.Finder = sampler.NewOriginFinder(ds.TCSR, rng.Split())
		t.finderC = sampler.NewOriginFinder(ds.TCSR, mathx.NewRNG(cfg.Seed^0xc0de))
	case FinderTGL:
		t.Finder = sampler.NewTGLFinder(ds.TCSR, rng.Split())
		t.finderC = sampler.NewTGLFinder(ds.TCSR, mathx.NewRNG(cfg.Seed^0xc0de))
	case FinderGPU:
		t.Finder = sampler.NewGPUFinder(ds.TCSR, device.New(), cfg.Seed^0xabcd)
		t.finderC = sampler.NewGPUFinder(ds.TCSR, device.New(), cfg.Seed^0xc0de)
	default:
		return nil, fmt.Errorf("train: unknown finder %q", cfg.Finder)
	}
	if cfg.AdaBatch && !t.Finder.ArbitraryOrder() {
		return nil, fmt.Errorf("train: finder %q requires chronological order and "+
			"cannot serve adaptive mini-batch selection (§III-C)", cfg.Finder)
	}

	// Feature stores: edge features behind the (optional) frequency cache,
	// node features resident (they are small on every dataset, §III-D).
	var pol cache.Policy
	if cfg.CacheRatio > 0 && edgeDim > 0 {
		k := int(cfg.CacheRatio * float64(ds.EdgeFeat.Rows))
		if k > 0 {
			switch cfg.CachePolicy {
			case "", "freq":
				pol = cache.NewFrequency(ds.EdgeFeat.Rows, k, cfg.CacheEps)
			case "lru":
				pol = cache.NewLRU(k)
			default:
				return nil, fmt.Errorf("train: unknown cache policy %q", cfg.CachePolicy)
			}
		}
	}
	t.EdgeStore = featstore.New(ds.EdgeFeat, pol, t.Xfer)
	t.NodeStore = featstore.New(ds.NodeFeat, nil, t.Xfer)

	if cfg.AdaBatch {
		t.Selector = adaptive.NewMiniBatchSelector(ds.TrainEnd, cfg.Gamma, rng.Split())
	}
	if cfg.AdaNeighbor {
		t.Sampler = adaptive.NewSampler(adaptive.SamplerConfig{
			NodeDim: nodeDim, EdgeDim: edgeDim,
			FeatDim: cfg.TimeDim, TimeDim: cfg.TimeDim, FreqDim: cfg.TimeDim,
			M: cfg.M, Decoder: cfg.Decoder,
			UseTE: !cfg.DisableTE, UseFE: !cfg.DisableFE, UseIE: !cfg.DisableIE,
			Alpha: 2, Beta: 1,
		}, rng.Split())
		t.OptSampler = nn.NewAdam(t.Sampler.Params(), cfg.LR)
		t.OptSampler.ClipNorm = 5
	}

	params := append(t.Model.Params(), t.Pred.Params()...)
	t.OptModel = nn.NewAdam(params, cfg.LR)
	t.OptModel.ClipNorm = 5
	return t, nil
}

// negativeDst samples a negative destination (destination partition for
// bipartite datasets, any node otherwise).
func (t *Trainer) negativeDst() int32 {
	lo := 0
	if t.DS.Spec.NumSrc > 0 {
		lo = t.DS.Spec.NumSrc
	}
	return int32(lo + t.rng.Intn(t.DS.Spec.NumNodes-lo))
}

// time runs f and charges its wall time to bucket.
func (t *Trainer) time(bucket string, f func()) {
	start := time.Now()
	f()
	t.Timer.Add(bucket, time.Since(start))
}

// sliceEdges charges FS with both the real copy time and the modeled
// transfer time of the rows fetched. Slice reports its own call's modeled
// cost, so concurrent slicing from the prefetch goroutine and the consumer
// never cross-charges.
func (t *Trainer) sliceEdges(ids []int32, dst *tensor.Matrix) {
	start := time.Now()
	modeled := t.EdgeStore.Slice(ids, dst)
	t.Timer.Add("FS", time.Since(start)+modeled)
}

func (t *Trainer) sliceNodes(ids []int32, dst *tensor.Matrix) {
	start := time.Now()
	modeled := t.NodeStore.Slice(ids, dst)
	t.Timer.Add("FS", time.Since(start)+modeled)
}
