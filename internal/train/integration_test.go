package train

import (
	"math"
	"testing"

	"taser/internal/adaptive"
	"taser/internal/autograd"
	"taser/internal/sampler"
)

// TestNoTemporalLeakage is the most important correctness property of the
// whole pipeline: no neighbor at any hop may originate from an interaction
// at or after its target's timestamp, for any variant.
func TestNoTemporalLeakage(t *testing.T) {
	ds := tinyDS(20)
	for _, adaptiveOn := range []bool{false, true} {
		cfg := tinyCfg()
		cfg.AdaNeighbor = adaptiveOn
		cfg.Decoder = adaptive.DecoderGATv2
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		edges := tr.nextBatchEdges()
		roots := tr.rootsForEdges(edges)
		built := tr.buildMiniBatch(roots)

		// Walk layers outermost→innermost reconstructing target times.
		targets := roots
		for l := len(built.mb.Layers) - 1; l >= 0; l-- {
			block := built.mb.Layers[l]
			if block.NumTargets != len(targets) {
				t.Fatalf("layer %d target count %d want %d", l, block.NumTargets, len(targets))
			}
			for i := range targets {
				for j := 0; j < block.Budget; j++ {
					s := i*block.Budget + j
					if block.Mask.Data[s] == 0 {
						continue
					}
					dt := block.DeltaT.Data[s]
					if dt <= 0 {
						t.Fatalf("adaptive=%v layer %d: Δt=%v (future or simultaneous neighbor)",
							adaptiveOn, l, dt)
					}
				}
			}
			targets = extendTargets(targets, block)
		}
	}
}

// TestMiniBatchLayoutInvariant checks the [targets | neighbors] row
// alignment the models rely on, through the real pipeline.
func TestMiniBatchLayoutInvariant(t *testing.T) {
	ds := tinyDS(21)
	cfg := tinyCfg()
	tr, _ := New(cfg, ds)
	edges := tr.nextBatchEdges()
	roots := tr.rootsForEdges(edges)
	built := tr.buildMiniBatch(roots)
	if err := built.mb.Validate(); err != nil {
		t.Fatal(err)
	}
	if built.mb.Roots() != len(roots) {
		t.Fatal("root count")
	}
	// Leaf features must have node-feature width.
	if built.mb.LeafFeat.Cols != ds.Spec.NodeDim {
		t.Fatal("leaf width")
	}
}

// TestSampleLossEndToEnd drives the full co-training path for both
// backbones: model forward, model backward, sample loss construction, and a
// sampler optimizer step that actually changes the sampler's parameters.
func TestSampleLossEndToEnd(t *testing.T) {
	ds := tinyDS(22)
	for _, model := range []ModelKind{ModelTGAT, ModelGraphMixer} {
		cfg := tinyCfg()
		cfg.Model = model
		cfg.AdaNeighbor = true
		cfg.Decoder = adaptive.DecoderLinear
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		beforeParams := snapshotParams(tr.Sampler.Params())
		tr.TrainStep()
		changed := false
		for i, p := range tr.Sampler.Params() {
			for j, v := range p.Val.Data {
				if v != beforeParams[i][j] {
					changed = true
				}
			}
		}
		if !changed {
			t.Fatalf("%s: sample loss never moved the sampler parameters", model)
		}
	}
}

func snapshotParams(params []*autograd.Var) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Val.Data...)
	}
	return out
}

// TestTrainStepDeterministic: identical seeds must produce identical losses
// across fresh trainers (the whole pipeline is driven by mathx.RNG).
func TestTrainStepDeterministic(t *testing.T) {
	ds := tinyDS(23)
	mk := func() float64 {
		cfg := tinyCfg()
		cfg.AdaBatch, cfg.AdaNeighbor = true, true
		cfg.Decoder = adaptive.DecoderGATv2
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		return tr.TrainStep()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same seed, different losses: %v vs %v", a, b)
	}
}

// TestBuildMiniBatchExported covers the inference entry point examples use.
func TestBuildMiniBatchExported(t *testing.T) {
	ds := tinyDS(24)
	cfg := tinyCfg()
	tr, _ := New(cfg, ds)
	roots := []sampler.Target{{Node: 1, Time: 500}, {Node: 50, Time: 600}}
	mb := tr.BuildMiniBatch(roots)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	g := autograd.New()
	emb, _ := tr.Model.Forward(g, mb)
	if emb.Rows() != 2 {
		t.Fatal("embedding rows")
	}
	for _, v := range emb.Val.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN embedding")
		}
	}
}

// TestAdaAllLayersRuns exercises Algorithm 1's every-hop adaptive sampling.
func TestAdaAllLayersRuns(t *testing.T) {
	ds := tinyDS(25)
	cfg := tinyCfg()
	cfg.AdaNeighbor = true
	cfg.AdaAllLayers = true
	cfg.Decoder = adaptive.DecoderTrans
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if loss := tr.TrainStep(); math.IsNaN(loss) {
		t.Fatal("all-layers adaptive step")
	}
}

// TestLRUCachePolicyConfig covers the ablation knob.
func TestLRUCachePolicyConfig(t *testing.T) {
	ds := tinyDS(26)
	cfg := tinyCfg()
	cfg.CacheRatio = 0.2
	cfg.CachePolicy = "lru"
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainStep()
	if _, err := New(Config{CachePolicy: "bogus", CacheRatio: 0.1}, ds); err == nil {
		t.Fatal("bogus cache policy must error")
	}
}

// TestEvalAPBounds checks the AP metric: in [0, 1], ~0.5 untrained, and
// higher after training on the learnable dataset.
func TestEvalAPBounds(t *testing.T) {
	ds := tinyDS(29)
	cfg := tinyCfg()
	cfg.Epochs = 3
	tr, _ := New(cfg, ds)
	before := tr.EvalAP(SplitTest)
	if before < 0.2 || before > 0.8 {
		t.Fatalf("untrained AP %v should be near 0.5", before)
	}
	for e := 0; e < cfg.Epochs; e++ {
		tr.TrainEpoch()
	}
	after := tr.EvalAP(SplitTest)
	if after < 0 || after > 1 {
		t.Fatalf("AP out of bounds: %v", after)
	}
	if after <= before-0.1 {
		t.Fatalf("training should not collapse AP: before %v after %v", before, after)
	}
}

// TestFinderPolicyOverride covers the static-policy knob, including the
// inverse-timespan heuristic.
func TestFinderPolicyOverride(t *testing.T) {
	ds := tinyDS(28)
	for _, policy := range []string{"uniform", "recent", "invts"} {
		cfg := tinyCfg()
		cfg.FinderPolicy = policy
		tr, err := New(cfg, ds)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if loss := tr.TrainStep(); math.IsNaN(loss) {
			t.Fatalf("%s: NaN loss", policy)
		}
	}
	if _, err := New(Config{FinderPolicy: "bogus"}, ds); err == nil {
		t.Fatal("bogus policy must error")
	}
}

// TestEncoderDisableFlags covers the encoder-ablation knobs end to end.
func TestEncoderDisableFlags(t *testing.T) {
	ds := tinyDS(27)
	cfg := tinyCfg()
	cfg.AdaNeighbor = true
	cfg.DisableTE, cfg.DisableFE = true, true
	tr, err := New(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if loss := tr.TrainStep(); math.IsNaN(loss) {
		t.Fatal("ablated encoder step")
	}
}
