package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"taser/internal/mathx"
)

// matMulRef is the seed repo's skip-based ikj loop, kept verbatim as the
// equivalence reference for the tiled kernels: per-element accumulation is
// k-ascending from zero, which is the order the dense, blocked (single
// panel), and parallel paths all contractually preserve.
func matMulRef(dst, a, b *Matrix) {
	n, p := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func matMulTransBRef(dst, a, b *Matrix, accumulate bool) {
	n := a.Cols
	m2 := b.Rows
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*m2 : (i+1)*m2]
		for j := 0; j < m2; j++ {
			brow := b.Data[j*n : (j+1)*n]
			var s float64
			for k, bv := range brow {
				s += arow[k] * bv
			}
			if accumulate {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

func matMulTransARef(dst, a, b *Matrix) {
	n, p := a.Cols, b.Cols
	for i := 0; i < n; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*n+i]
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// bitwiseDiff returns the index of the first element whose float64 bits
// differ, or -1 when the matrices are bitwise-identical.
func bitwiseDiff(x, y *Matrix) int {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return 0
	}
	for i := range x.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
			return i
		}
	}
	return -1
}

// withZeros zeroes roughly the given fraction of m's elements (deterministic
// in the rng), so equivalence tests exercise the dense kernels' multiply-
// through against the reference's zero-skip.
func withZeros(m *Matrix, frac float64, rng *mathx.RNG) *Matrix {
	for i := range m.Data {
		if rng.Float64() < frac {
			m.Data[i] = 0
		}
	}
	return m
}

// TestMatMulDenseBitwiseMatchesRef pins the dense-path contract: for every
// shape (including 4-row remainders and the small-product cutover) and for
// inputs with exact zeros, MatMulInto is bitwise-identical to the seed loop.
func TestMatMulDenseBitwiseMatchesRef(t *testing.T) {
	rng := mathx.NewRNG(11)
	shapes := [][3]int{
		{1, 1, 1}, {5, 7, 3}, {8, 16, 8}, {64, 48, 24}, {66, 48, 24},
		{67, 38, 24}, {127, 24, 48}, {304, 48, 24}, {130, 38, 24},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := withZeros(Randn(m, k, 1, rng), 0.3, rng)
		b := Randn(k, n, 1, rng)
		got := New(m, n)
		MatMulInto(got, a, b)
		want := New(m, n)
		matMulRef(want, a, b)
		if d := bitwiseDiff(got, want); d >= 0 {
			t.Fatalf("%dx%dx%d: elem %d differs: got %v want %v", m, k, n, d, got.Data[d], want.Data[d])
		}
	}
}

// TestMatMulBlockedBitwiseRefWithinPanel pins the packed kernel's contract
// for K ≤ blockKc: one Kc panel means no regrouping, so the blocked result
// is bitwise-identical to the reference, edge tiles included.
func TestMatMulBlockedBitwiseRefWithinPanel(t *testing.T) {
	rng := mathx.NewRNG(12)
	shapes := [][3]int{
		{3, 5, 2}, {64, 256, 64}, {70, 200, 70}, {65, 37, 9}, {128, 256, 31},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := withZeros(Randn(m, k, 1, rng), 0.2, rng)
		b := Randn(k, n, 1, rng)
		got := New(m, n)
		matMulBlockedRange(got, a, b, 0, m)
		want := New(m, n)
		matMulRef(want, a, b)
		if d := bitwiseDiff(got, want); d >= 0 {
			t.Fatalf("%dx%dx%d: elem %d differs: got %v want %v", m, k, n, d, got.Data[d], want.Data[d])
		}
	}
}

// TestMatMulBlockedULPBoundedAcrossPanels checks the K > blockKc regime:
// accumulation regroups once per Kc panel, so results may differ from the
// reference, but only within a tight relative bound.
func TestMatMulBlockedULPBoundedAcrossPanels(t *testing.T) {
	rng := mathx.NewRNG(13)
	m, k, n := 33, 600, 31
	a := Randn(m, k, 1, rng)
	b := Randn(k, n, 1, rng)
	got := New(m, n)
	matMulBlockedRange(got, a, b, 0, m)
	want := New(m, n)
	matMulRef(want, a, b)
	for i := range got.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		if diff > 1e-10*(1+math.Abs(want.Data[i])) {
			t.Fatalf("elem %d: blocked %v vs ref %v differ beyond panel-regroup bound", i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulTransBBitwiseMatchesRef covers the 2×4 tile plus both remainder
// loops (odd dst rows, dst cols not divisible by 4) and the accumulate form.
func TestMatMulTransBBitwiseMatchesRef(t *testing.T) {
	rng := mathx.NewRNG(14)
	shapes := [][3]int{{1, 5, 1}, {5, 7, 6}, {32, 24, 38}, {33, 24, 39}, {130, 48, 27}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := Randn(m, k, 1, rng)
		b := Randn(n, k, 1, rng)
		got := New(m, n)
		MatMulTransBInto(got, a, b)
		want := New(m, n)
		matMulTransBRef(want, a, b, false)
		if d := bitwiseDiff(got, want); d >= 0 {
			t.Fatalf("%dx%dx%d: elem %d differs", m, k, n, d)
		}
		MatMulTransBAddInto(got, a, b)
		matMulTransBRef(want, a, b, true)
		if d := bitwiseDiff(got, want); d >= 0 {
			t.Fatalf("%dx%dx%d add: elem %d differs", m, k, n, d)
		}
	}
}

// TestMatMulTransABitwiseMatchesRef covers the 4-lane TransA kernel against
// the seed's skip loop, with whole zero rows (the masked-token case the
// tile-level skip is built for) and lane remainders.
func TestMatMulTransABitwiseMatchesRef(t *testing.T) {
	rng := mathx.NewRNG(15)
	shapes := [][3]int{{5, 3, 4}, {40, 24, 24}, {41, 25, 23}, {160, 38, 24}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := Randn(m, k, 1, rng)
		for i := 0; i < m; i += 3 { // mask whole token rows
			for j := 0; j < k; j++ {
				a.Data[i*k+j] = 0
			}
		}
		b := Randn(m, n, 1, rng)
		got := Randn(k, n, 1, rng)
		want := got.Clone()
		MatMulTransAInto(got, a, b)
		matMulTransARef(want, a, b)
		if d := bitwiseDiff(got, want); d >= 0 {
			t.Fatalf("(%dx%d)ᵀ@%dx%d: elem %d differs", m, k, m, n, d)
		}
	}
}

// TestMatMulSparseABitwiseMatchesDense pins that the explicit sparse entry
// point computes the same product as the dense path for finite inputs.
func TestMatMulSparseABitwiseMatchesDense(t *testing.T) {
	rng := mathx.NewRNG(16)
	a := withZeros(Randn(90, 40, 1, rng), 0.8, rng)
	b := Randn(40, 24, 1, rng)
	dense := New(90, 24)
	MatMulInto(dense, a, b)
	sparse := New(90, 24)
	MatMulSparseAInto(sparse, a, b)
	if d := bitwiseDiff(dense, sparse); d >= 0 {
		t.Fatalf("sparse and dense paths differ at elem %d", d)
	}
}

func TestMatMulSparseAShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMulSparseAInto(New(2, 2), New(2, 3), New(2, 3))
}

// TestMatMulParallelSerialBitwiseAtCrossover forces multiple workers and
// checks, for every parallelized matmul entry point, that results exactly at
// and around the parallelThreshold crossover are bitwise-identical to the
// single-worker run — the row-block ownership contract.
func TestMatMulParallelSerialBitwiseAtCrossover(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	// m*k*n: 63·32·32 = 64512 (below 1<<16), 64·32·32 = 65536 (at), 65: above.
	for _, m := range []int{63, 64, 65} {
		k, n := 32, 32
		rng := mathx.NewRNG(uint64(17 + m))
		a := withZeros(Randn(m, k, 1, rng), 0.2, rng)
		b := Randn(k, n, 1, rng)
		bt := Randn(n, k, 1, rng)
		wide := Randn(m, n, 1, rng)

		type result struct{ mm, tb, tba, ta *Matrix }
		run := func(procs int) result {
			runtime.GOMAXPROCS(procs)
			r := result{New(m, n), New(m, n), Randn(m, n, 1, mathx.NewRNG(5)), Randn(k, n, 1, mathx.NewRNG(6))}
			MatMulInto(r.mm, a, b)
			MatMulTransBInto(r.tb, a, bt)
			MatMulTransBAddInto(r.tba, a, bt)
			MatMulTransAInto(r.ta, a, wide)
			return r
		}
		serial := run(1)
		parallel := run(4)
		for _, pair := range []struct {
			name string
			s, p *Matrix
		}{
			{"MatMulInto", serial.mm, parallel.mm},
			{"MatMulTransBInto", serial.tb, parallel.tb},
			{"MatMulTransBAddInto", serial.tba, parallel.tba},
			{"MatMulTransAInto", serial.ta, parallel.ta},
		} {
			if d := bitwiseDiff(pair.s, pair.p); d >= 0 {
				t.Fatalf("m=%d %s: parallel differs from serial at elem %d", m, pair.name, d)
			}
		}
	}
}

// TestWorkerLimitTracksGOMAXPROCS is the regression test for the frozen
// worker count: the kernels must see GOMAXPROCS changes made after package
// init, on the very next call.
func TestWorkerLimitTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 3, 2} {
		runtime.GOMAXPROCS(procs)
		if got := workerLimit(); got != procs {
			t.Fatalf("workerLimit() = %d after GOMAXPROCS(%d)", got, procs)
		}
	}
	// parallelRows must fan out to the current width, not the init-time one.
	runtime.GOMAXPROCS(2)
	var mu sync.Mutex
	var chunks [][2]int
	parallelRows(10, func(lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(chunks) != 2 {
		t.Fatalf("parallelRows split into %d chunks with GOMAXPROCS=2: %v", len(chunks), chunks)
	}
	covered := make([]bool, 10)
	for _, ch := range chunks {
		for i := ch[0]; i < ch[1]; i++ {
			if covered[i] {
				t.Fatalf("row %d covered twice: %v", i, chunks)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("row %d never covered: %v", i, chunks)
		}
	}
	runtime.GOMAXPROCS(1)
	chunks = chunks[:0]
	parallelRows(10, func(lo, hi int) {
		chunks = append(chunks, [2]int{lo, hi})
	})
	if len(chunks) != 1 || chunks[0] != [2]int{0, 10} {
		t.Fatalf("parallelRows with GOMAXPROCS=1 must run one serial chunk, got %v", chunks)
	}
}

func benchMM(b *testing.B, kernel func(dst, a, bb *Matrix), shapes [][3]int) {
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			rng := mathx.NewRNG(99)
			a := Randn(m, k, 1, rng)
			bb := Randn(k, n, 1, rng)
			dst := New(m, n)
			b.SetBytes(int64(2 * m * k * n)) // MB/s column ≈ 4·MFLOP/s
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel(dst, a, bb)
			}
		})
	}
}

var benchShapes = [][3]int{{1504, 38, 24}, {1504, 24, 48}, {304, 48, 24}, {256, 256, 256}, {512, 512, 512}}

func BenchmarkMatMul(b *testing.B) { benchMM(b, MatMulInto, benchShapes) }
func BenchmarkMatMulRef(b *testing.B) {
	benchMM(b, func(d, x, y *Matrix) { matMulRef(d, x, y) }, benchShapes)
}
