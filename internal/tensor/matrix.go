// Package tensor implements dense float64 matrices and the compute kernels
// the TGNN stack is built on: parallel matrix multiply, row softmax, layer
// normalization, and grouped (per-neighborhood) operations.
//
// Matrices are row-major. Kernels never retain their arguments and always
// write into caller-owned destinations when the name ends in "Into";
// otherwise they allocate.
package tensor

import (
	"fmt"
	"math"

	"taser/internal/mathx"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: New(%d, %d) with negative dimension", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r×c matrix.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice(%d, %d) with %d elements", r, c, len(data)))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// Randn fills a new r×c matrix with N(0, std²) entries.
func Randn(r, c int, std float64, rng *mathx.RNG) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SliceRows returns a view (no copy) of the first n rows.
func (m *Matrix) SliceRows(n int) *Matrix {
	if n < 0 || n > m.Rows {
		panic(fmt.Sprintf("tensor: SliceRows(%d) of %dx%d matrix", n, m.Rows, m.Cols))
	}
	return FromSlice(n, m.Cols, m.Data[:n*m.Cols])
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Resize reshapes m to r×c in place and zeroes every element, reusing the
// backing array when its capacity suffices. After Resize the matrix is
// indistinguishable from a fresh New(r, c); buffer pools and the Arena use it
// to recycle matrices across training steps without reallocating.
//
// The zero-fill is a contract, not an optimization detail: recycled slabs
// (pool.go, Arena) hold a previous checkout's data, and every consumer of a
// resized matrix — gradient accumulators that +=, masks finished by
// FinishMask, kernels like ReLU that only write selected elements — assumes a
// fresh-New state. This includes the region beyond the previous length when a
// matrix grows within its capacity: Go reslicing does NOT clear it, so Resize
// must (TestResizeZeroFillsGrownRegion pins this).
func (m *Matrix) Resize(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: Resize(%d, %d) with negative dimension", r, c))
	}
	n := r * c
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = r, c
	return m
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool {
	return m.Rows == o.Rows && m.Cols == o.Cols
}

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// SameShapeOrPanic panics with the operation name if shapes differ.
func (m *Matrix) SameShapeOrPanic(o *Matrix, op string) { m.shapeCheck(o, op) }

// AddInPlace adds o element-wise into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.shapeCheck(o, "AddInPlace")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts o element-wise from m.
func (m *Matrix) SubInPlace(o *Matrix) {
	m.shapeCheck(o, "SubInPlace")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// MulInPlace multiplies m by o element-wise (Hadamard).
func (m *Matrix) MulInPlace(o *Matrix) {
	m.shapeCheck(o, "MulInPlace")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AxpyInPlace computes m += alpha*o.
func (m *Matrix) AxpyInPlace(alpha float64, o *Matrix) {
	m.shapeCheck(o, "AxpyInPlace")
	for i, v := range o.Data {
		m.Data[i] += alpha * v
	}
}

// AddRowVecInPlace adds the 1×C row vector b to every row of m.
func (m *Matrix) AddRowVecInPlace(b *Matrix) {
	if b.Rows != 1 || b.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVecInPlace bias %dx%d onto %dx%d", b.Rows, b.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range b.Data {
			row[j] += v
		}
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns max |element|; useful in tests.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		s += " ["
		for i := 0; i < m.Rows; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
		}
		s += "]"
	}
	return s
}
