package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"taser/internal/mathx"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero data")
		}
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set roundtrip")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	a.AddInPlace(b)
	want := []float64{11, 22, 33, 44}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("AddInPlace[%d]=%v want %v", i, a.Data[i], w)
		}
	}
	a.SubInPlace(b)
	a.MulInPlace(b)
	wantMul := []float64{10, 40, 90, 160}
	for i, w := range wantMul {
		if a.Data[i] != w {
			t.Fatalf("MulInPlace[%d]=%v want %v", i, a.Data[i], w)
		}
	}
	a.ScaleInPlace(0.5)
	if a.Data[0] != 5 {
		t.Fatal("ScaleInPlace")
	}
	a.AxpyInPlace(2, b)
	if a.Data[0] != 25 {
		t.Fatalf("AxpyInPlace got %v", a.Data[0])
	}
}

func TestAddRowVec(t *testing.T) {
	m := New(2, 3)
	bias := FromSlice(1, 3, []float64{1, 2, 3})
	m.AddRowVecInPlace(bias)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != float64(j+1) {
				t.Fatalf("bias broadcast at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := mathx.NewRNG(1)
	err := quick.Check(func(rSeed uint64) bool {
		r := 1 + int(rSeed%7)
		c := 1 + int((rSeed>>8)%9)
		m := Randn(r, c, 1, rng)
		return m.Transpose().Transpose().Equal(m, 0)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := mathx.NewRNG(2)
	a := Randn(4, 4, 1, rng)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).Equal(a, 1e-12) || !MatMul(id, a).Equal(a, 1e-12) {
		t.Fatal("identity multiply must be a no-op")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("got %v", got)
	}
}

// matMulNaive is an independent reference implementation for property tests.
func matMulNaive(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := mathx.NewRNG(3)
	err := quick.Check(func(seed uint64) bool {
		r := 1 + int(seed%11)
		k := 1 + int((seed>>8)%13)
		c := 1 + int((seed>>16)%11)
		a := Randn(r, k, 1, rng)
		b := Randn(k, c, 1, rng)
		return MatMul(a, b).Equal(matMulNaive(a, b), 1e-9)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := mathx.NewRNG(4)
	// Large enough to cross parallelThreshold.
	a := Randn(128, 64, 1, rng)
	b := Randn(64, 96, 1, rng)
	got := MatMul(a, b)
	want := New(128, 96)
	matMulBlockedRange(want, a, b, 0, 128)
	if !got.Equal(want, 1e-12) {
		t.Fatal("parallel and serial matmul disagree")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := mathx.NewRNG(5)
	a := Randn(5, 7, 1, rng)
	b := Randn(6, 7, 1, rng)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.Transpose())
	if !got.Equal(want, 1e-10) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulTransAAccumulates(t *testing.T) {
	rng := mathx.NewRNG(6)
	a := Randn(5, 3, 1, rng)
	b := Randn(5, 4, 1, rng)
	dst := New(3, 4)
	dst.Fill(1)
	MatMulTransAInto(dst, a, b)
	want := MatMul(a.Transpose(), b)
	ones := New(3, 4)
	ones.Fill(1)
	want.AddInPlace(ones)
	if !dst.Equal(want, 1e-10) {
		t.Fatal("MatMulTransAInto must accumulate into dst")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestSumMaxAbs(t *testing.T) {
	m := FromSlice(1, 4, []float64{1, -5, 3, 0})
	if m.Sum() != -1 {
		t.Fatal("Sum")
	}
	if m.MaxAbs() != 5 {
		t.Fatal("MaxAbs")
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice(1, 1, []float64{1.0})
	b := FromSlice(1, 1, []float64{1.0 + 1e-9})
	if !a.Equal(b, 1e-8) || a.Equal(b, 1e-10) {
		t.Fatal("Equal tolerance semantics")
	}
	c := New(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("shape mismatch must be unequal")
	}
}

func TestRandnStats(t *testing.T) {
	rng := mathx.NewRNG(7)
	m := Randn(100, 100, 2, rng)
	var mean float64
	for _, v := range m.Data {
		mean += v
	}
	mean /= float64(len(m.Data))
	if math.Abs(mean) > 0.1 {
		t.Fatalf("Randn mean %v too far from 0", mean)
	}
	var variance float64
	for _, v := range m.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(m.Data))
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("Randn var %v want ~4", variance)
	}
}
