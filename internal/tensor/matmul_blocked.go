package tensor

import "sync"

// Cache-blocked packed-panel matrix multiply (the large-matrix MatMulInto
// path).
//
// The layout is the classic three-loop blocking (GotoBLAS/BLIS): B is packed
// one Kc×Nc panel at a time, A one Mc×Kc panel at a time, and a 2×4
// register-tiled micro-kernel walks the two packed panels in lockstep. The
// packs exist so the micro-kernel's eight accumulators stream both operands
// from contiguous, cache-resident memory with unit stride and no index
// arithmetic — the Go compiler keeps the tile in registers and the inner loop
// free of bounds checks (scripts/bce_check.sh pins that).
//
// The tile is 2×4, not the textbook 4×4, because this repo targets
// GOAMD64=v1: the compiler emits scalar SSE2, one float64 per XMM register,
// and there are sixteen XMM registers. A 4×4 tile needs 16 accumulators plus
// 8 operand values live at once and spills half of them to the stack every
// iteration (measured ~20% slower than the plain loop); 2×4 needs
// 8 accumulators + 6 operands = 14 live values and fits.
//
// Short edges (M not divisible by 2, N not by 4) are zero-padded at pack
// time, so the hot kernel never branches on tile width; only the dst
// write-back distinguishes full from partial tiles.
//
// Equivalence contract: every dst element accumulates its k-products in
// ascending-k order within a panel, panels are visited in ascending-k order,
// and each worker owns its dst rows outright — so the blocked kernel is
// bitwise-identical to the straight-line ikj loop whenever K ≤ blockKc, and
// ULP-close (one regrouping per Kc panel) beyond that. matmul_test.go
// asserts both.
const (
	blockMc = 64  // A-panel rows packed per pass
	blockKc = 256 // panel depth; K ≤ blockKc keeps accumulation single-panel
	blockNc = 64  // B-panel columns packed per pass

	// blockedMinElems is the B size (rows*cols) above which MatMulInto takes
	// the packed path. Below it B stays cache-resident across the whole
	// product and the pack traffic is pure overhead — the unpacked 4-row
	// kernel (matMulDenseRange) wins there, measured through 256³. At
	// 512³ (B = 2 MiB) and beyond, packing wins by keeping the working set
	// in one Kc×Nc panel.
	blockedMinElems = 1 << 18
)

// packBuf holds one worker's pack storage. Buffers are recycled through
// packPool with the arena's capacity discipline (grow-only, reused across
// calls, never aliasing caller data), so steady-state MatMulInto performs no
// heap allocations for packing.
type packBuf struct {
	a, b []float64
}

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

func (pb *packBuf) ensureA(n int) {
	if cap(pb.a) < n {
		pb.a = make([]float64, n)
	} else {
		pb.a = pb.a[:n]
	}
}

func (pb *packBuf) ensureB(n int) {
	if cap(pb.b) < n {
		pb.b = make([]float64, n)
	} else {
		pb.b = pb.b[:n]
	}
}

// matMulBlockedRange computes rows [lo, hi) of dst = a @ b with the packed
// blocked kernel. Workers calling it on disjoint row ranges touch disjoint
// dst rows and private pack buffers, so the parallel split needs no
// synchronization beyond parallelRows' join.
func matMulBlockedRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	pb := packPool.Get().(*packBuf)
	for jc := 0; jc < p; jc += blockNc {
		nc := min(blockNc, p-jc)
		tilesN := (nc + 3) / 4
		for pc := 0; pc < n; pc += blockKc {
			kc := min(blockKc, n-pc)
			pb.ensureB(tilesN * 4 * kc)
			packBPanel(pb.b, b, pc, kc, jc, nc)
			add := pc > 0
			for ic := lo; ic < hi; ic += blockMc {
				mc := min(blockMc, hi-ic)
				tilesM := (mc + 1) / 2
				pb.ensureA(tilesM * 2 * kc)
				packAPanel(pb.a, a, ic, mc, pc, kc)
				for ti := 0; ti < tilesM; ti++ {
					i0 := ic + ti*2
					mr := min(2, mc-ti*2)
					ap := pb.a[ti*2*kc : (ti+1)*2*kc]
					for tj := 0; tj < tilesN; tj++ {
						j0 := jc + tj*4
						nr := min(4, nc-tj*4)
						bp := pb.b[tj*4*kc : (tj+1)*4*kc]
						if mr == 2 && nr == 4 {
							d0 := dst.Data[i0*p+j0 : i0*p+j0+4]
							d1 := dst.Data[(i0+1)*p+j0 : (i0+1)*p+j0+4]
							microKernel2x4(ap, bp, d0, d1, add)
						} else {
							microKernelEdge(ap, bp, kc, dst, i0, j0, mr, nr, add)
						}
					}
				}
			}
		}
	}
	packPool.Put(pb)
}

// microKernel2x4 multiplies one packed 2×kc A micro-panel by one packed
// kc×4 B micro-panel, keeping the 2×4 product tile in eight scalar
// accumulators, then stores (or, with add, accumulates) it into the two
// 4-wide dst row windows. The loop carries no index arithmetic and no
// bounds checks: both panels are consumed by reslicing in lockstep, and
// each step issues 6 loads and 8 multiply-adds.
func microKernel2x4(ap, bp []float64, d0, d1 []float64, add bool) {
	d0 = d0[:4]
	d1 = d1[:4]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	for len(ap) >= 2 && len(bp) >= 4 {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[2:]
		bp = bp[4:]
	}
	if add {
		d0[0] += c00
		d0[1] += c01
		d0[2] += c02
		d0[3] += c03
		d1[0] += c10
		d1[1] += c11
		d1[2] += c12
		d1[3] += c13
	} else {
		d0[0] = c00
		d0[1] = c01
		d0[2] = c02
		d0[3] = c03
		d1[0] = c10
		d1[1] = c11
		d1[2] = c12
		d1[3] = c13
	}
}

// microKernelEdge handles tiles short of 2 rows or 4 columns: the packed
// panels are still full-lane (zero-padded), only the write-back is bounded
// by the real mr×nr extent. Rare by construction — it runs at most once per
// panel edge — so it favors clarity over BCE tuning.
func microKernelEdge(ap, bp []float64, kc int, dst *Matrix, i0, j0, mr, nr int, add bool) {
	p := dst.Cols
	for r := 0; r < mr; r++ {
		drow := dst.Data[(i0+r)*p+j0 : (i0+r)*p+j0+nr]
		for c := 0; c < nr; c++ {
			var s float64
			ai, bi := r, c
			for k := 0; k < kc; k++ {
				s += ap[ai] * bp[bi]
				ai += 2
				bi += 4
			}
			if add {
				drow[c] += s
			} else {
				drow[c] = s
			}
		}
	}
}

// packAPanel packs rows [i0, i0+mc) × cols [k0, k0+kc) of a into buf as
// ceil(mc/2) micro-panels of 2 rows × kc columns, k-major within a panel
// (buf[tile*2*kc + k*2 + lane]); lanes past mc are zero-filled so the
// micro-kernel always consumes full tiles.
func packAPanel(buf []float64, a *Matrix, i0, mc, k0, kc int) {
	n := a.Cols
	tiles := (mc + 1) / 2
	for t := 0; t < tiles; t++ {
		panel := buf[t*2*kc : (t+1)*2*kc]
		for r := 0; r < 2; r++ {
			row := t*2 + r
			if row >= mc {
				for o := r; o < len(panel); o += 2 {
					panel[o] = 0
				}
				continue
			}
			src := a.Data[(i0+row)*n+k0 : (i0+row)*n+k0+kc]
			o := r
			for _, v := range src {
				panel[o] = v
				o += 2
			}
		}
	}
}

// packBPanel packs rows [k0, k0+kc) × cols [j0, j0+nc) of b into buf as
// ceil(nc/4) micro-panels of kc rows × 4 columns, k-major within a panel
// (buf[tile*4*kc + k*4 + lane]); lanes past nc are zero-filled.
func packBPanel(buf []float64, b *Matrix, k0, kc, j0, nc int) {
	p := b.Cols
	tiles := (nc + 3) / 4
	for t := 0; t < tiles; t++ {
		panel := buf[t*4*kc : (t+1)*4*kc]
		j := j0 + t*4
		w := min(4, nc-t*4)
		if w == 4 {
			for k := 0; k < kc; k++ {
				brow := b.Data[(k0+k)*p+j : (k0+k)*p+j+4]
				lane := panel[k*4 : k*4+4]
				lane[0] = brow[0]
				lane[1] = brow[1]
				lane[2] = brow[2]
				lane[3] = brow[3]
			}
			continue
		}
		for k := 0; k < kc; k++ {
			brow := b.Data[(k0+k)*p+j : (k0+k)*p+j+w]
			lane := panel[k*4 : k*4+4]
			for c := 0; c < 4; c++ {
				if c < len(brow) {
					lane[c] = brow[c]
				} else {
					lane[c] = 0
				}
			}
		}
	}
}
