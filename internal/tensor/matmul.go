package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul stays
// single-threaded; goroutine fan-out costs more than it saves on tiny inputs.
const parallelThreshold = 1 << 16

// smallThreshold is the number of multiply-adds below which MatMulInto runs
// the plain one-row ikj loop: for tiny products the 4-row lane kernel's
// setup and remainder handling cost more than they save. Every dispatch
// target accumulates k-ascending per element, so the cutover is invisible
// to callers (bitwise, when K fits one panel — see matmul_blocked.go).
const smallThreshold = 1 << 12

// workerLimit reports the scheduler width for parallel kernels. It is read
// at call time — not frozen at package init — so runtime.GOMAXPROCS changes
// (tests pinning to 1, operators resizing a cgroup) take effect on the next
// kernel invocation. GOMAXPROCS(0) is a cheap read; callers on a hot path
// read it once per kernel call, never per row.
func workerLimit() int { return runtime.GOMAXPROCS(0) }

// MatMulInto computes dst = a @ b. dst must be pre-shaped a.Rows×b.Cols and
// must not alias a or b. Large products run the cache-blocked packed-panel
// kernel (matmul_blocked.go) and are split across worker goroutines by row
// block; each worker owns a disjoint range of dst rows.
//
// The dense path carries no zero-skip branch: every a element is multiplied
// through, which keeps the inner loop branch-free and lets products with
// exact-zero operands follow IEEE semantics (0·Inf = NaN propagates instead
// of being skipped). Callers multiplying a row- or element-sparse a should
// use MatMulSparseAInto, which keeps the skip.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	work := a.Rows * a.Cols * b.Cols
	if work < smallThreshold {
		matMulSmallRange(dst, a, b, 0, a.Rows)
		return
	}
	// Pick the kernel by B's footprint: while B stays cache-resident the
	// unpacked 4-row kernel wins; past blockedMinElems the packed panels pay
	// for themselves. All model shapes in this repo take the dense path.
	if b.Rows*b.Cols >= blockedMinElems {
		if work < parallelThreshold || workerLimit() == 1 {
			matMulBlockedRange(dst, a, b, 0, a.Rows)
			return
		}
		parallelRows(a.Rows, func(lo, hi int) { matMulBlockedRange(dst, a, b, lo, hi) })
		return
	}
	if work < parallelThreshold || workerLimit() == 1 {
		matMulDenseRange(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulDenseRange(dst, a, b, lo, hi) })
}

// matMulDenseRange computes rows [lo, hi) of dst = a @ b four dst rows per
// pass: each streamed b row is loaded once and feeds four register-resident
// a values (4 multiply-adds per b load instead of 1), and the four dst rows
// it writes stay in L1 because b.Cols is cache-small on this path. No
// packing, no zero-skip. Per-element accumulation is k-ascending, so the
// result is bitwise-identical to the straight-line ikj loop for every shape
// and any [lo, hi) split — the lane grouping only changes which rows are
// computed together, never the order of adds within an element.
func matMulDenseRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0 := dst.Data[i*p : i*p+p]
		d1 := dst.Data[(i+1)*p : (i+1)*p+p][:len(d0)]
		d2 := dst.Data[(i+2)*p : (i+2)*p+p][:len(d0)]
		d3 := dst.Data[(i+3)*p : (i+3)*p+p][:len(d0)]
		for j := range d0 {
			d0[j] = 0
			d1[j] = 0
			d2[j] = 0
			d3[j] = 0
		}
		a0 := a.Data[i*n : i*n+n]
		a1 := a.Data[(i+1)*n : (i+1)*n+n][:len(a0)]
		a2 := a.Data[(i+2)*n : (i+2)*n+n][:len(a0)]
		a3 := a.Data[(i+3)*n : (i+3)*n+n][:len(a0)]
		for k, av0 := range a0 {
			av1, av2, av3 := a1[k], a2[k], a3[k]
			brow := b.Data[k*p : k*p+p][:len(d0)]
			for j, bv := range brow {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	if i < hi {
		matMulSmallRange(dst, a, b, i, hi)
	}
}

// matMulSmallRange computes rows [lo, hi) of dst = a @ b with an ikj loop
// order that streams b row-wise. No packing, no zero-skip: the small-product
// path of MatMulInto. Accumulation order (k ascending per element) matches
// the blocked kernel's single-panel order.
func matMulSmallRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : i*p+p]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*n : i*n+n]
		for k, av := range arow {
			brow := b.Data[k*p : k*p+p][:len(drow)]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulSparseAInto computes dst = a @ b exactly like MatMulInto but keeps
// the per-element zero-skip on a: a row of b is only read (and a row of
// multiply-adds only spent) for nonzero a elements. This is the explicit
// sparse entry point for callers whose left operand is mostly zero —
// mask-zeroed token rows, one-hot gathers — where skipping beats the dense
// micro-kernel; `taser-bench -exp kernels` records the density crossover.
// For dense a the branch mispredicts per element and loses to MatMulInto.
func MatMulSparseAInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulSparseA %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulSparseAInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if a.Rows*a.Cols*b.Cols < parallelThreshold || workerLimit() == 1 {
		matMulSparseARange(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulSparseARange(dst, a, b, lo, hi) })
}

// matMulSparseARange is the skip-based ikj kernel: rows [lo, hi) of a @ b,
// reading b row k only when a[i][k] != 0.
func matMulSparseARange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : i*p+p]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*n : i*n+n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : k*p+p][:len(drow)]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMul allocates and returns a @ b.
func MatMul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTransBInto computes dst = a @ bᵀ without materializing bᵀ.
func MatMulTransBInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB %dx%d @ (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulTransBInto dst shape")
	}
	// The serial path goes through a named range function so no closure is
	// materialized on it (conditionally-constructed closures heap-escape even
	// when the parallel branch is never taken).
	if a.Rows*a.Cols*b.Rows < parallelThreshold || workerLimit() == 1 {
		matMulTransBRange(dst, a, b, 0, a.Rows, false)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTransBRange(dst, a, b, lo, hi, false) })
}

// matMulTransBRange computes (or, with accumulate, adds) rows [lo, hi) of
// a @ bᵀ into dst. Both operands stream along k contiguously, so no packing
// is needed; rows are processed in 2×4 register tiles (eight dot products
// share six operand loads per k — 2×4 rather than 4×4 because eight f64
// accumulators plus six operands fit the sixteen scalar XMM registers of
// GOAMD64=v1, while a 4×4 tile spills). Every dot product accumulates
// k-ascending from zero, so results are bitwise-identical to the
// straight-line loop for every shape and any [lo, hi) split.
func matMulTransBRange(dst, a, b *Matrix, lo, hi int, accumulate bool) {
	n, p := a.Cols, b.Cols
	m2 := b.Rows
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a.Data[i*n : i*n+n]
		a1 := a.Data[(i+1)*n : (i+1)*n+n][:len(a0)]
		d0 := dst.Data[i*m2 : i*m2+m2]
		d1 := dst.Data[(i+1)*m2 : (i+1)*m2+m2][:len(d0)]
		j := 0
		for ; j+4 <= m2; j += 4 {
			b0 := b.Data[j*p : j*p+p][:len(a0)]
			b1 := b.Data[(j+1)*p : (j+1)*p+p][:len(a0)]
			b2 := b.Data[(j+2)*p : (j+2)*p+p][:len(a0)]
			b3 := b.Data[(j+3)*p : (j+3)*p+p][:len(a0)]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			for k, av0 := range a0 {
				bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
				c00 += av0 * bv0
				c01 += av0 * bv1
				c02 += av0 * bv2
				c03 += av0 * bv3
				av1 := a1[k]
				c10 += av1 * bv0
				c11 += av1 * bv1
				c12 += av1 * bv2
				c13 += av1 * bv3
			}
			if accumulate {
				d0[j] += c00
				d0[j+1] += c01
				d0[j+2] += c02
				d0[j+3] += c03
				d1[j] += c10
				d1[j+1] += c11
				d1[j+2] += c12
				d1[j+3] += c13
			} else {
				d0[j] = c00
				d0[j+1] = c01
				d0[j+2] = c02
				d0[j+3] = c03
				d1[j] = c10
				d1[j+1] = c11
				d1[j+2] = c12
				d1[j+3] = c13
			}
		}
		for ; j < m2; j++ {
			brow := b.Data[j*p : j*p+p][:len(a0)]
			var s0, s1 float64
			for k, bv := range brow {
				s0 += a0[k] * bv
				s1 += a1[k] * bv
			}
			if accumulate {
				d0[j] += s0
				d1[j] += s1
			} else {
				d0[j] = s0
				d1[j] = s1
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Data[i*n : i*n+n]
		drow := dst.Data[i*m2 : i*m2+m2]
		for j := 0; j < m2; j++ {
			brow := b.Data[j*p : j*p+p][:len(arow)]
			var s float64
			for k, bv := range brow {
				s += arow[k] * bv
			}
			if accumulate {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// MatMulTransB allocates and returns a @ bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Rows)
	MatMulTransBInto(dst, a, b)
	return dst
}

// MatMulTransBAddInto accumulates dst += a @ bᵀ without materializing bᵀ or a
// temporary product (the gradient-accumulation form autograd's MatMul
// backward uses: dA += dO @ Bᵀ). Workers own disjoint dst row blocks.
func MatMulTransBAddInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBAdd %dx%d @ (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulTransBAddInto dst shape")
	}
	if a.Rows*a.Cols*b.Rows < parallelThreshold || workerLimit() == 1 {
		matMulTransBRange(dst, a, b, 0, a.Rows, true)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTransBRange(dst, a, b, lo, hi, true) })
}

// MatMulTransAInto computes dst = aᵀ @ b, accumulating into dst (dst is NOT
// zeroed first — this is the gradient-accumulation form used by autograd).
// Large products are parallelized across dst row blocks: each worker owns a
// disjoint set of dst rows, so no synchronization is needed.
//
// This entry keeps a sparsity skip — per tile of four a columns, not per
// element — because its left operand is forward activations, where padding
// masks (MulColVec) zero whole token rows; a zeroed a row zeroes all four
// lanes of its tile, so the skip fires exactly on masked tokens and the
// dense inner loop stays branch-free per element.
func MatMulTransAInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA (%dx%d)ᵀ @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulTransAInto dst shape")
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || workerLimit() == 1 || dst.Rows == 1 {
		matMulTransARange(dst, a, b, 0, dst.Rows)
		return
	}
	parallelRows(dst.Rows, func(lo, hi int) { matMulTransARange(dst, a, b, lo, hi) })
}

// matMulTransARange accumulates dst rows [lo, hi) of aᵀ @ b. Four dst rows
// (four a columns) are produced per pass so each streamed b row is loaded
// once for four accumulate lanes; the four a loads per k are contiguous.
// Per-element accumulation is k-ascending exactly like the straight-line
// loop, so any [lo, hi) split of rows is bitwise-equivalent to serial.
func matMulTransARange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	m := a.Rows
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0 := dst.Data[i*p : i*p+p]
		d1 := dst.Data[(i+1)*p : (i+1)*p+p][:len(d0)]
		d2 := dst.Data[(i+2)*p : (i+2)*p+p][:len(d0)]
		d3 := dst.Data[(i+3)*p : (i+3)*p+p][:len(d0)]
		for k := 0; k < m; k++ {
			acol := a.Data[k*n+i : k*n+i+4]
			av0, av1, av2, av3 := acol[0], acol[1], acol[2], acol[3]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue // masked token: its whole a row is zero
			}
			brow := b.Data[k*p : k*p+p][:len(d0)]
			for j, bv := range brow {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		drow := dst.Data[i*p : i*p+p]
		for k := 0; k < m; k++ {
			av := a.Data[k*n+i]
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : k*p+p][:len(drow)]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// parallelRows splits [0, rows) across the worker pool and blocks until all
// chunks complete. The pool width is re-read from GOMAXPROCS on every call
// (workerLimit), so resizing the process takes effect immediately.
func parallelRows(rows int, body func(lo, hi int)) {
	workers := workerLimit()
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		// No parallelism to win: skip the goroutine + WaitGroup traffic (and
		// their allocations) instead of fanning out to a single worker.
		body(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the row-block scheduler for other packages' kernels.
func ParallelRows(rows int, body func(lo, hi int)) { parallelRows(rows, body) }
