package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul stays
// single-threaded; goroutine fan-out costs more than it saves on tiny inputs.
const parallelThreshold = 1 << 16

var workerCount = runtime.GOMAXPROCS(0)

// MatMulInto computes dst = a @ b. dst must be pre-shaped a.Rows×b.Cols and
// must not alias a or b. Large products are split across worker goroutines
// by row block.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || workerCount == 1 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulRange(dst, a, b, lo, hi) })
}

// matMulRange computes rows [lo, hi) of dst = a @ b with an ikj loop order
// that streams b row-wise for cache efficiency.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMul allocates and returns a @ b.
func MatMul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	MatMulInto(dst, a, b)
	return dst
}

// MatMulTransBInto computes dst = a @ bᵀ without materializing bᵀ.
func MatMulTransBInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB %dx%d @ (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulTransBInto dst shape")
	}
	// The serial path goes through a named range function so no closure is
	// materialized on it (conditionally-constructed closures heap-escape even
	// when the parallel branch is never taken).
	if a.Rows*a.Cols*b.Rows < parallelThreshold || workerCount == 1 {
		matMulTransBRange(dst, a, b, 0, a.Rows, false)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTransBRange(dst, a, b, lo, hi, false) })
}

// matMulTransBRange computes (or, with accumulate, adds) rows [lo, hi) of
// a @ bᵀ into dst.
func matMulTransBRange(dst, a, b *Matrix, lo, hi int, accumulate bool) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			if accumulate {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// MatMulTransB allocates and returns a @ bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Rows)
	MatMulTransBInto(dst, a, b)
	return dst
}

// MatMulTransBAddInto accumulates dst += a @ bᵀ without materializing bᵀ or a
// temporary product (the gradient-accumulation form autograd's MatMul
// backward uses: dA += dO @ Bᵀ). Workers own disjoint dst row blocks.
func MatMulTransBAddInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBAdd %dx%d @ (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulTransBAddInto dst shape")
	}
	if a.Rows*a.Cols*b.Rows < parallelThreshold || workerCount == 1 {
		matMulTransBRange(dst, a, b, 0, a.Rows, true)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTransBRange(dst, a, b, lo, hi, true) })
}

// MatMulTransAInto computes dst = aᵀ @ b, accumulating into dst (dst is NOT
// zeroed first — this is the gradient-accumulation form used by autograd).
// Large products are parallelized across dst row blocks: each worker owns a
// disjoint set of dst rows, so no synchronization is needed.
func MatMulTransAInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA (%dx%d)ᵀ @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulTransAInto dst shape")
	}
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || workerCount == 1 || dst.Rows == 1 {
		matMulTransARange(dst, a, b, 0, dst.Rows)
		return
	}
	parallelRows(dst.Rows, func(lo, hi int) { matMulTransARange(dst, a, b, lo, hi) })
}

// matMulTransARange accumulates dst rows [lo, hi) of aᵀ @ b. The i-outer
// order keeps each worker's writes confined to its own dst rows; the strided
// read of a's column i costs one load per k against a p-length accumulate.
func matMulTransARange(dst, a, b *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*n+i]
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// parallelRows splits [0, rows) across the worker pool and blocks until all
// chunks complete.
func parallelRows(rows int, body func(lo, hi int)) {
	workers := workerCount
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		// No parallelism to win: skip the goroutine + WaitGroup traffic (and
		// their allocations) instead of fanning out to a single worker.
		body(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the row-block scheduler for other packages' kernels.
func ParallelRows(rows int, body func(lo, hi int)) { parallelRows(rows, body) }
