package tensor

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"taser/internal/mathx"
)

// TestRowKernelsDegenerateShapes pins the uniform degenerate-shape policy:
// zero rows or zero columns are a no-op (SoftmaxRowsInto used to panic
// indexing in[0] of an empty row), and LayerNorm writes no statistics for
// zero-width rows.
func TestRowKernelsDegenerateShapes(t *testing.T) {
	// Zero columns.
	SoftmaxRowsInto(New(3, 0), New(3, 0))
	mean := []float64{-7, -7, -7}
	invStd := []float64{-7, -7, -7}
	LayerNormRowsInto(New(3, 0), New(3, 0), New(1, 0), New(1, 0), mean, invStd, 1e-5)
	for i := range mean {
		if mean[i] != -7 || invStd[i] != -7 {
			t.Fatal("LayerNorm wrote statistics for zero-width rows")
		}
	}
	// Zero rows.
	SoftmaxRowsInto(New(0, 5), New(0, 5))
	LayerNormRowsInto(New(0, 5), New(0, 5), New(1, 5), New(1, 5), nil, nil, 1e-5)

	// Zero-width grouped kernels.
	GroupedWeightedSumInto(New(2, 0), FromSlice(2, 2, []float64{1, 2, 3, 4}), New(4, 0), 2)
	GroupedMatMulLeftInto(New(4, 0), FromSlice(2, 2, []float64{1, 2, 3, 4}), New(4, 0), 2)
	scores := FromSlice(2, 2, []float64{9, 9, 9, 9})
	GroupedScoreInto(scores, New(2, 0), New(4, 0), 2)
	for _, v := range scores.Data {
		if v != 0 {
			t.Fatal("zero-width embeddings must score 0")
		}
	}
	// Zero groups (empty batch).
	GroupedScoreInto(New(0, 2), New(0, 3), New(0, 3), 2)
	GroupedWeightedSumInto(New(0, 3), New(0, 2), New(0, 3), 2)
	GroupMeanInto(New(0, 3), New(0, 3), 2)
}

// TestGroupedKernelsPanicOnNonPositiveGroup pins the other half of the
// policy: an invalid grouping parameter is a programming error and panics
// with an explicit message rather than dividing by zero downstream.
func TestGroupedKernelsPanicOnNonPositiveGroup(t *testing.T) {
	cases := map[string]func(group int){
		"GroupMeanInto":          func(g int) { GroupMeanInto(New(2, 2), New(4, 2), g) },
		"GroupedScoreInto":       func(g int) { GroupedScoreInto(New(2, 2), New(2, 3), New(4, 3), g) },
		"GroupedWeightedSumInto": func(g int) { GroupedWeightedSumInto(New(2, 3), New(2, 2), New(4, 3), g) },
		"GroupedMatMulLeftInto":  func(g int) { GroupedMatMulLeftInto(New(4, 3), New(2, 2), New(4, 3), g) },
	}
	for name, f := range cases {
		for _, g := range []int{0, -1} {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s(group=%d): expected panic", name, g)
					}
					if !strings.Contains(panicText(r), "must be positive") {
						t.Fatalf("%s(group=%d): panic %v lacks explicit message", name, g, r)
					}
				}()
				f(g)
			}()
		}
	}
}

func panicText(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return ""
}

// grouped references: one naive loop per kernel, group-agnostic.
func groupedScoreNaive(scores, q, keys *Matrix, group int) {
	for g := 0; g < q.Rows; g++ {
		for k := 0; k < group; k++ {
			var s float64
			for j := 0; j < keys.Cols; j++ {
				s += q.At(g, j) * keys.At(g*group+k, j)
			}
			scores.Set(g, k, s)
		}
	}
}

func groupedWeightedSumNaive(dst, w, vals *Matrix, group int) {
	for g := 0; g < dst.Rows; g++ {
		for j := 0; j < dst.Cols; j++ {
			var s float64
			for k := 0; k < group; k++ {
				s += w.At(g, k) * vals.At(g*group+k, j)
			}
			dst.Set(g, j, s)
		}
	}
}

func groupedMatMulLeftNaive(dst, w, src *Matrix, group int) {
	k2 := w.Rows
	b := src.Rows / group
	for g := 0; g < b; g++ {
		for i := 0; i < k2; i++ {
			for j := 0; j < src.Cols; j++ {
				var s float64
				for k := 0; k < group; k++ {
					s += w.At(i, k) * src.At(g*group+k, j)
				}
				dst.Set(g*k2+i, j, s)
			}
		}
	}
}

// TestGroupedKernelsBoundaryGroups covers group=1 (every row its own group)
// and group = total rows (one group spans the matrix) for each grouped
// kernel, against naive references.
func TestGroupedKernelsBoundaryGroups(t *testing.T) {
	rng := mathx.NewRNG(21)
	const rows, d = 12, 7
	keys := Randn(rows, d, 1, rng)
	vals := Randn(rows, d, 1, rng)
	for _, group := range []int{1, rows} {
		b := rows / group
		q := Randn(b, d, 1, rng)
		scores := New(b, group)
		GroupedScoreInto(scores, q, keys, group)
		wantScores := New(b, group)
		groupedScoreNaive(wantScores, q, keys, group)
		if !scores.Equal(wantScores, 1e-12) {
			t.Fatalf("GroupedScore group=%d mismatch", group)
		}

		w := Randn(b, group, 1, rng)
		sum := New(b, d)
		GroupedWeightedSumInto(sum, w, vals, group)
		wantSum := New(b, d)
		groupedWeightedSumNaive(wantSum, w, vals, group)
		if !sum.Equal(wantSum, 1e-12) {
			t.Fatalf("GroupedWeightedSum group=%d mismatch", group)
		}

		const k2 = 5
		mix := Randn(k2, group, 1, rng)
		out := New(b*k2, d)
		GroupedMatMulLeftInto(out, mix, vals, group)
		wantOut := New(b*k2, d)
		groupedMatMulLeftNaive(wantOut, mix, vals, group)
		if !out.Equal(wantOut, 1e-12) {
			t.Fatalf("GroupedMatMulLeft group=%d mismatch", group)
		}

		m := New(b, d)
		GroupMeanInto(m, vals, group)
		for g := 0; g < b; g++ {
			for j := 0; j < d; j++ {
				var s float64
				for k := 0; k < group; k++ {
					s += vals.At(g*group+k, j)
				}
				if math.Abs(m.At(g, j)-s/float64(group)) > 1e-12 {
					t.Fatalf("GroupMean group=%d mismatch", group)
				}
			}
		}
	}
}

// TestGroupedMatMulLeftParallelSerialAtCrossover forces multiple workers and
// pins bitwise parallel-vs-serial equivalence for the one parallelized
// grouped kernel, exactly at the parallelThreshold work crossover.
func TestGroupedMatMulLeftParallelSerialAtCrossover(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	rng := mathx.NewRNG(22)
	const k2, group, c = 16, 16, 16
	// work = b·k2·group·c: b=15 below 1<<16, 16 exactly at, 17 above.
	for _, b := range []int{15, 16, 17} {
		w := Randn(k2, group, 1, rng)
		src := Randn(b*group, c, 1, rng)
		runtime.GOMAXPROCS(1)
		serial := New(b*k2, c)
		GroupedMatMulLeftInto(serial, w, src, group)
		runtime.GOMAXPROCS(4)
		parallel := New(b*k2, c)
		GroupedMatMulLeftInto(parallel, w, src, group)
		if d := bitwiseDiff(serial, parallel); d >= 0 {
			t.Fatalf("b=%d: parallel differs from serial at elem %d", b, d)
		}
	}
}
