package tensor

import (
	"fmt"
	"math"
)

// Row kernels. Degenerate shapes are uniform across the package: a kernel
// whose input has zero rows or zero columns is a no-op (there is nothing to
// read or write — SoftmaxRowsInto in particular must not index in[0] of an
// empty row), while an invalid grouping parameter (group ≤ 0) panics with an
// explicit message. Inner loops hoist their bounds: every slice indexed by
// the loop variable is pre-sliced to the range length, so the compiler
// eliminates the per-element checks (scripts/bce_check.sh guards this).

// SoftmaxRowsInto writes the row-wise softmax of src into dst (may alias).
// Zero-column input is a no-op.
func SoftmaxRowsInto(dst, src *Matrix) {
	src.shapeCheck(dst, "SoftmaxRows")
	if src.Cols == 0 {
		return
	}
	c := src.Cols
	for i := 0; i < src.Rows; i++ {
		in := src.Data[i*c : i*c+c]
		out := dst.Data[i*c : i*c+c][:len(in)]
		m := in[0]
		for _, v := range in[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range in {
			e := math.Exp(v - m)
			out[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range out {
			out[j] *= inv
		}
	}
}

// LayerNormRowsInto normalizes each row of src to zero mean / unit variance,
// then applies the per-column gain g and bias b (both 1×C). meanOut/invStdOut
// (len Rows) receive the per-row statistics needed for the backward pass; they
// may be nil for inference. Zero-column input is a no-op (no statistics are
// written either: a zero-width row has no mean).
func LayerNormRowsInto(dst, src, g, b *Matrix, meanOut, invStdOut []float64, eps float64) {
	src.shapeCheck(dst, "LayerNormRows")
	if g.Cols != src.Cols || b.Cols != src.Cols {
		panic("tensor: LayerNormRows gain/bias width")
	}
	if src.Cols == 0 {
		return
	}
	cols := src.Cols
	c := float64(cols)
	for i := 0; i < src.Rows; i++ {
		in := src.Data[i*cols : i*cols+cols]
		out := dst.Data[i*cols : i*cols+cols][:len(in)]
		gd := g.Data[:len(in)]
		bd := b.Data[:len(in)]
		var mean float64
		for _, v := range in {
			mean += v
		}
		mean /= c
		var variance float64
		for _, v := range in {
			d := v - mean
			variance += d * d
		}
		variance /= c
		invStd := 1 / math.Sqrt(variance+eps)
		if meanOut != nil {
			meanOut[i] = mean
			invStdOut[i] = invStd
		}
		for j, v := range in {
			out[j] = (v-mean)*invStd*gd[j] + bd[j]
		}
	}
}

// GatherRowsInto copies src rows idx[i] into dst row i.
func GatherRowsInto(dst, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: GatherRows dst %dx%d for %d idx of width %d",
			dst.Rows, dst.Cols, len(idx), src.Cols))
	}
	for i, id := range idx {
		copy(dst.Row(i), src.Row(int(id)))
	}
}

// ScatterAddRows accumulates src row i into dst row idx[i].
func ScatterAddRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape")
	}
	c := src.Cols
	for i, id := range idx {
		srow := src.Data[i*c : i*c+c]
		drow := dst.Data[int(id)*c : int(id)*c+c][:len(srow)]
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// ConcatColsInto writes the column-wise concatenation of parts into dst.
// Every part must have dst.Rows rows and the widths must sum to dst.Cols.
func ConcatColsInto(dst *Matrix, parts ...*Matrix) {
	off := 0
	for _, p := range parts {
		if p.Rows != dst.Rows {
			panic("tensor: ConcatCols row mismatch")
		}
		for i := 0; i < p.Rows; i++ {
			copy(dst.Row(i)[off:off+p.Cols], p.Row(i))
		}
		off += p.Cols
	}
	if off != dst.Cols {
		panic(fmt.Sprintf("tensor: ConcatCols widths sum to %d, dst has %d", off, dst.Cols))
	}
}

// SliceColsInto extracts columns [lo, hi) of src into dst.
func SliceColsInto(dst, src *Matrix, lo, hi int) {
	if dst.Rows != src.Rows || dst.Cols != hi-lo || lo < 0 || hi > src.Cols {
		panic("tensor: SliceCols shape")
	}
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[lo:hi])
	}
}

// GroupMeanInto averages each consecutive group of `group` rows of src into
// one row of dst: dst row g = mean(src rows [g*group, (g+1)*group)).
func GroupMeanInto(dst, src *Matrix, group int) {
	if group <= 0 {
		panic(fmt.Sprintf("tensor: GroupMean group %d must be positive", group))
	}
	if src.Rows%group != 0 || dst.Rows != src.Rows/group || dst.Cols != src.Cols {
		panic("tensor: GroupMean shape")
	}
	c := src.Cols
	inv := 1 / float64(group)
	for g := 0; g < dst.Rows; g++ {
		out := dst.Data[g*c : g*c+c]
		for j := range out {
			out[j] = 0
		}
		for r := g * group; r < (g+1)*group; r++ {
			row := src.Data[r*c : r*c+c][:len(out)]
			for j, v := range row {
				out[j] += v
			}
		}
		for j := range out {
			out[j] *= inv
		}
	}
}

// GroupedScoreInto computes per-group dot products: for each group g of
// `group` consecutive rows of keys, scores[g][k] = q.Row(g) · keys.Row(g*group+k).
// scores must be (keys.Rows/group)×group; q must be (keys.Rows/group)×d.
// Zero-width embeddings (d == 0) score 0 everywhere.
func GroupedScoreInto(scores, q, keys *Matrix, group int) {
	if group <= 0 {
		panic(fmt.Sprintf("tensor: GroupedScore group %d must be positive", group))
	}
	b := keys.Rows / group
	if keys.Rows%group != 0 || q.Rows != b || q.Cols != keys.Cols ||
		scores.Rows != b || scores.Cols != group {
		panic("tensor: GroupedScore shape")
	}
	d := keys.Cols
	for g := 0; g < b; g++ {
		qrow := q.Data[g*d : g*d+d]
		out := scores.Data[g*group : g*group+group]
		base := g * group
		k := 0
		// Four keys per pass share each loaded query element.
		for ; k+4 <= group; k += 4 {
			r := (base + k) * d
			k0 := keys.Data[r : r+d][:len(qrow)]
			k1 := keys.Data[r+d : r+2*d][:len(qrow)]
			k2 := keys.Data[r+2*d : r+3*d][:len(qrow)]
			k3 := keys.Data[r+3*d : r+4*d][:len(qrow)]
			var s0, s1, s2, s3 float64
			for j, qv := range qrow {
				s0 += qv * k0[j]
				s1 += qv * k1[j]
				s2 += qv * k2[j]
				s3 += qv * k3[j]
			}
			out[k] = s0
			out[k+1] = s1
			out[k+2] = s2
			out[k+3] = s3
		}
		for ; k < group; k++ {
			krow := keys.Data[(base+k)*d : (base+k)*d+d][:len(qrow)]
			var s float64
			for j, qv := range qrow {
				s += qv * krow[j]
			}
			out[k] = s
		}
	}
}

// GroupedWeightedSumInto computes, for each group g,
// dst.Row(g) = Σ_k w[g][k] · vals.Row(g*group+k). The sum is dense — exact
// zeros in w (rare for softmax weights) are multiplied through rather than
// branched around — and accumulates k-ascending per element, so results are
// bitwise-stable against the historical skip-based loop for finite inputs.
func GroupedWeightedSumInto(dst, w, vals *Matrix, group int) {
	if group <= 0 {
		panic(fmt.Sprintf("tensor: GroupedWeightedSum group %d must be positive", group))
	}
	b := vals.Rows / group
	if vals.Rows%group != 0 || w.Rows != b || w.Cols != group ||
		dst.Rows != b || dst.Cols != vals.Cols {
		panic("tensor: GroupedWeightedSum shape")
	}
	c := vals.Cols
	if c == 0 {
		return
	}
	for g := 0; g < b; g++ {
		wrow := w.Data[g*group : g*group+group]
		out := dst.Data[g*c : g*c+c]
		for j := range out {
			out[j] = 0
		}
		base := g * group
		k := 0
		for ; k+4 <= group; k += 4 {
			wv0, wv1, wv2, wv3 := wrow[k], wrow[k+1], wrow[k+2], wrow[k+3]
			r := (base + k) * c
			v0 := vals.Data[r : r+c][:len(out)]
			v1 := vals.Data[r+c : r+2*c][:len(out)]
			v2 := vals.Data[r+2*c : r+3*c][:len(out)]
			v3 := vals.Data[r+3*c : r+4*c][:len(out)]
			for j := range out {
				// Four sequential adds per element (not one fused sum):
				// accumulation order stays k-ascending, bitwise-equal to the
				// unrolled-by-one loop.
				t := out[j]
				t += wv0 * v0[j]
				t += wv1 * v1[j]
				t += wv2 * v2[j]
				t += wv3 * v3[j]
				out[j] = t
			}
		}
		for ; k < group; k++ {
			wv := wrow[k]
			vrow := vals.Data[(base+k)*c : (base+k)*c+c][:len(out)]
			for j, v := range vrow {
				out[j] += wv * v
			}
		}
	}
}

// GroupedMatMulLeftInto applies the shared K2×K matrix w on the left of each
// K×C group of src: for group g, dst rows [g*K2,(g+1)*K2) = w @ src rows
// [g*K,(g+1)*K). This is MLP-Mixer token mixing over per-root neighborhoods.
// The inner product is dense (no zero-skip on w — mixer weights are dense,
// and the branch costs more than the multiply) and register-tiled four dst
// rows at a time so each streamed src row feeds four accumulate lanes.
func GroupedMatMulLeftInto(dst, w, src *Matrix, group int) {
	if group <= 0 {
		panic(fmt.Sprintf("tensor: GroupedMatMulLeft group %d must be positive", group))
	}
	k2 := w.Rows
	if w.Cols != group || src.Rows%group != 0 {
		panic("tensor: GroupedMatMulLeft shape")
	}
	b := src.Rows / group
	if dst.Rows != b*k2 || dst.Cols != src.Cols {
		panic("tensor: GroupedMatMulLeft dst shape")
	}
	c := src.Cols
	if b*k2*group*c < parallelThreshold || workerLimit() == 1 {
		groupedMatMulLeftRange(dst, w, src, group, 0, b)
		return
	}
	parallelRows(b, func(gLo, gHi int) { groupedMatMulLeftRange(dst, w, src, group, gLo, gHi) })
}

// groupedMatMulLeftRange computes groups [gLo, gHi) of GroupedMatMulLeftInto;
// a named function so the serial path allocates no closure. Four output rows
// share each loaded src row; per-element accumulation is k-ascending with
// one sequential add per w element, bitwise-equal to the row-at-a-time loop.
func groupedMatMulLeftRange(dst, w, src *Matrix, group, gLo, gHi int) {
	k2, c := w.Rows, src.Cols
	if c == 0 {
		return
	}
	for g := gLo; g < gHi; g++ {
		srcBase := g * group * c
		i := 0
		for ; i+4 <= k2; i += 4 {
			w0 := w.Data[i*group : i*group+group]
			w1 := w.Data[(i+1)*group : (i+1)*group+group][:len(w0)]
			w2 := w.Data[(i+2)*group : (i+2)*group+group][:len(w0)]
			w3 := w.Data[(i+3)*group : (i+3)*group+group][:len(w0)]
			o := (g*k2 + i) * c
			out0 := dst.Data[o : o+c]
			out1 := dst.Data[o+c : o+2*c][:len(out0)]
			out2 := dst.Data[o+2*c : o+3*c][:len(out0)]
			out3 := dst.Data[o+3*c : o+4*c][:len(out0)]
			for j := range out0 {
				out0[j] = 0
				out1[j] = 0
				out2[j] = 0
				out3[j] = 0
			}
			for k := 0; k < group; k++ {
				wv0, wv1, wv2, wv3 := w0[k], w1[k], w2[k], w3[k]
				srow := src.Data[srcBase+k*c : srcBase+k*c+c][:len(out0)]
				for j, v := range srow {
					out0[j] += wv0 * v
					out1[j] += wv1 * v
					out2[j] += wv2 * v
					out3[j] += wv3 * v
				}
			}
		}
		for ; i < k2; i++ {
			wrow := w.Data[i*group : i*group+group]
			out := dst.Data[(g*k2+i)*c : (g*k2+i)*c+c]
			for j := range out {
				out[j] = 0
			}
			for k := 0; k < group; k++ {
				wv := wrow[k]
				srow := src.Data[srcBase+k*c : srcBase+k*c+c][:len(out)]
				for j, v := range srow {
					out[j] += wv * v
				}
			}
		}
	}
}
