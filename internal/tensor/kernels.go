package tensor

import (
	"fmt"
	"math"
)

// SoftmaxRowsInto writes the row-wise softmax of src into dst (may alias).
func SoftmaxRowsInto(dst, src *Matrix) {
	src.shapeCheck(dst, "SoftmaxRows")
	for i := 0; i < src.Rows; i++ {
		in := src.Row(i)
		out := dst.Row(i)
		m := in[0]
		for _, v := range in[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range in {
			e := math.Exp(v - m)
			out[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range out {
			out[j] *= inv
		}
	}
}

// LayerNormRowsInto normalizes each row of src to zero mean / unit variance,
// then applies the per-column gain g and bias b (both 1×C). meanOut/invStdOut
// (len Rows) receive the per-row statistics needed for the backward pass; they
// may be nil for inference.
func LayerNormRowsInto(dst, src, g, b *Matrix, meanOut, invStdOut []float64, eps float64) {
	src.shapeCheck(dst, "LayerNormRows")
	if g.Cols != src.Cols || b.Cols != src.Cols {
		panic("tensor: LayerNormRows gain/bias width")
	}
	c := float64(src.Cols)
	for i := 0; i < src.Rows; i++ {
		in := src.Row(i)
		out := dst.Row(i)
		var mean float64
		for _, v := range in {
			mean += v
		}
		mean /= c
		var variance float64
		for _, v := range in {
			d := v - mean
			variance += d * d
		}
		variance /= c
		invStd := 1 / math.Sqrt(variance+eps)
		if meanOut != nil {
			meanOut[i] = mean
			invStdOut[i] = invStd
		}
		for j, v := range in {
			out[j] = (v-mean)*invStd*g.Data[j] + b.Data[j]
		}
	}
}

// GatherRowsInto copies src rows idx[i] into dst row i.
func GatherRowsInto(dst, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: GatherRows dst %dx%d for %d idx of width %d",
			dst.Rows, dst.Cols, len(idx), src.Cols))
	}
	for i, id := range idx {
		copy(dst.Row(i), src.Row(int(id)))
	}
}

// ScatterAddRows accumulates src row i into dst row idx[i].
func ScatterAddRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape")
	}
	for i, id := range idx {
		drow := dst.Row(int(id))
		for j, v := range src.Row(i) {
			drow[j] += v
		}
	}
}

// ConcatColsInto writes the column-wise concatenation of parts into dst.
// Every part must have dst.Rows rows and the widths must sum to dst.Cols.
func ConcatColsInto(dst *Matrix, parts ...*Matrix) {
	off := 0
	for _, p := range parts {
		if p.Rows != dst.Rows {
			panic("tensor: ConcatCols row mismatch")
		}
		for i := 0; i < p.Rows; i++ {
			copy(dst.Row(i)[off:off+p.Cols], p.Row(i))
		}
		off += p.Cols
	}
	if off != dst.Cols {
		panic(fmt.Sprintf("tensor: ConcatCols widths sum to %d, dst has %d", off, dst.Cols))
	}
}

// SliceColsInto extracts columns [lo, hi) of src into dst.
func SliceColsInto(dst, src *Matrix, lo, hi int) {
	if dst.Rows != src.Rows || dst.Cols != hi-lo || lo < 0 || hi > src.Cols {
		panic("tensor: SliceCols shape")
	}
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[lo:hi])
	}
}

// GroupMeanInto averages each consecutive group of `group` rows of src into
// one row of dst: dst row g = mean(src rows [g*group, (g+1)*group)).
func GroupMeanInto(dst, src *Matrix, group int) {
	if src.Rows%group != 0 || dst.Rows != src.Rows/group || dst.Cols != src.Cols {
		panic("tensor: GroupMean shape")
	}
	inv := 1 / float64(group)
	for g := 0; g < dst.Rows; g++ {
		out := dst.Row(g)
		for j := range out {
			out[j] = 0
		}
		for r := g * group; r < (g+1)*group; r++ {
			row := src.Row(r)
			for j, v := range row {
				out[j] += v
			}
		}
		for j := range out {
			out[j] *= inv
		}
	}
}

// GroupedScoreInto computes per-group dot products: for each group g of
// `group` consecutive rows of keys, scores[g][k] = q.Row(g) · keys.Row(g*group+k).
// scores must be (keys.Rows/group)×group; q must be (keys.Rows/group)×d.
func GroupedScoreInto(scores, q, keys *Matrix, group int) {
	b := keys.Rows / group
	if keys.Rows%group != 0 || q.Rows != b || q.Cols != keys.Cols ||
		scores.Rows != b || scores.Cols != group {
		panic("tensor: GroupedScore shape")
	}
	for g := 0; g < b; g++ {
		qrow := q.Row(g)
		out := scores.Row(g)
		for k := 0; k < group; k++ {
			krow := keys.Row(g*group + k)
			var s float64
			for d, qv := range qrow {
				s += qv * krow[d]
			}
			out[k] = s
		}
	}
}

// GroupedWeightedSumInto computes, for each group g,
// dst.Row(g) = Σ_k w[g][k] · vals.Row(g*group+k).
func GroupedWeightedSumInto(dst, w, vals *Matrix, group int) {
	b := vals.Rows / group
	if vals.Rows%group != 0 || w.Rows != b || w.Cols != group ||
		dst.Rows != b || dst.Cols != vals.Cols {
		panic("tensor: GroupedWeightedSum shape")
	}
	for g := 0; g < b; g++ {
		wrow := w.Row(g)
		out := dst.Row(g)
		for j := range out {
			out[j] = 0
		}
		for k := 0; k < group; k++ {
			wv := wrow[k]
			if wv == 0 {
				continue
			}
			vrow := vals.Row(g*group + k)
			for j, v := range vrow {
				out[j] += wv * v
			}
		}
	}
}

// GroupedMatMulLeftInto applies the shared K2×K matrix w on the left of each
// K×C group of src: for group g, dst rows [g*K2,(g+1)*K2) = w @ src rows
// [g*K,(g+1)*K). This is MLP-Mixer token mixing over per-root neighborhoods.
func GroupedMatMulLeftInto(dst, w, src *Matrix, group int) {
	k2 := w.Rows
	if w.Cols != group || src.Rows%group != 0 {
		panic("tensor: GroupedMatMulLeft shape")
	}
	b := src.Rows / group
	if dst.Rows != b*k2 || dst.Cols != src.Cols {
		panic("tensor: GroupedMatMulLeft dst shape")
	}
	c := src.Cols
	if b*k2*group*c < parallelThreshold || workerCount == 1 {
		groupedMatMulLeftRange(dst, w, src, group, 0, b)
		return
	}
	parallelRows(b, func(gLo, gHi int) { groupedMatMulLeftRange(dst, w, src, group, gLo, gHi) })
}

// groupedMatMulLeftRange computes groups [gLo, gHi) of GroupedMatMulLeftInto;
// a named function so the serial path allocates no closure.
func groupedMatMulLeftRange(dst, w, src *Matrix, group, gLo, gHi int) {
	k2, c := w.Rows, src.Cols
	for g := gLo; g < gHi; g++ {
		for i := 0; i < k2; i++ {
			out := dst.Row(g*k2 + i)
			for j := range out {
				out[j] = 0
			}
			wrow := w.Row(i)
			for k := 0; k < group; k++ {
				wv := wrow[k]
				if wv == 0 {
					continue
				}
				srow := src.Data[(g*group+k)*c : (g*group+k+1)*c]
				for j, v := range srow {
					out[j] += wv * v
				}
			}
		}
	}
}
