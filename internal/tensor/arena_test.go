package tensor

import (
	"math"
	"testing"
)

func TestArenaGetReturnsZeroedMatrix(t *testing.T) {
	a := NewArena()
	m := a.Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("fresh checkout element %d = %v, want 0", i, v)
		}
	}
	m.Fill(7)
	a.Reset()
	m2 := a.Get(3, 4)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("recycled checkout element %d = %v, want 0", i, v)
		}
	}
}

func TestArenaRecyclesByShapeClass(t *testing.T) {
	a := NewArena()
	m := a.Get(4, 4) // class 16
	a.Reset()
	// Same class, different shape: the slab must be reused.
	m2 := a.Get(2, 5) // 10 elements → class 16
	if &m2.Data[:1][0] != &m.Data[:1][0] {
		t.Fatal("same-class checkout did not reuse the slab")
	}
	if m2 != m {
		t.Fatal("same-class checkout did not reuse the Matrix header")
	}
	a.Reset()
	// Larger class: must not hand back the small slab.
	m3 := a.Get(5, 5) // 25 elements → class 32
	if cap(m3.Data) < 25 {
		t.Fatalf("class-32 checkout has cap %d", cap(m3.Data))
	}
	if a.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", a.InUse())
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	a := NewArena()
	warm := func() {
		a.Get(8, 8)
		a.Get(1, 3)
		a.Get(16, 2)
		a.Reset()
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs > 0 {
		t.Fatalf("steady-state Get/Reset cycle allocates %.1f times, want 0", allocs)
	}
}

func TestArenaPoisonMarksReturnedSlabs(t *testing.T) {
	a := NewArena()
	a.SetPoison(true)
	m := a.Get(2, 2)
	m.Fill(1)
	a.Reset()
	// Stale reference: every element must now read NaN.
	for i, v := range m.Data {
		if !math.IsNaN(v) {
			t.Fatalf("poisoned slab element %d = %v, want NaN", i, v)
		}
	}
	// Legitimate reuse is unaffected: the next checkout is zeroed.
	m2 := a.Get(2, 2)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("post-poison checkout element %d = %v, want 0", i, v)
		}
	}
}

// TestResizeZeroFillsGrownRegion pins Resize's documented contract: growing a
// matrix within its existing capacity must zero the newly exposed region.
// Arena reuse makes this reachable on every hot path — a recycled slab holds
// the previous step's data beyond the current length, and Go reslicing does
// not clear it.
func TestResizeZeroFillsGrownRegion(t *testing.T) {
	m := New(4, 4)
	m.Fill(9)
	m.Resize(2, 2) // shrink: capacity 16 retained, elements 4..15 still 9 underneath
	m.Resize(3, 4) // grow within capacity: must expose zeros, not the stale 9s
	if cap(m.Data) < 16 {
		t.Fatal("test premise broken: backing array was reallocated")
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("grown region element %d = %v, want 0 (stale data leaked)", i, v)
		}
	}
	// Also via the shrink-free path: recycle at same size after writes.
	m.Fill(3)
	m.Resize(3, 4)
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("same-size resize element %d = %v, want 0", i, v)
		}
	}
}
