package tensor

import (
	"fmt"
	"math"
	"os"
)

// Arena is a slab-backed Matrix allocator for bounded-lifetime intermediates:
// Get checks a zeroed matrix out, Reset returns every outstanding checkout to
// per-shape-class free lists in one stroke. After one warm pass over a fixed
// working set, Get performs no heap allocations — both the Matrix headers and
// their float64 slabs are recycled.
//
// Shape classes: slab capacity is the element count rounded up to a power of
// two (arenaMinClass at least), so matrices whose sizes differ only by
// padding or small batch jitter share a free list instead of fragmenting one
// list per exact shape.
//
// Lifetime contract (DESIGN.md §7): a checked-out matrix is owned by the
// caller until the next Reset; anything that must survive Reset has to be
// copied out. Arena slabs are always allocated by the arena itself — they can
// never alias caller-provided storage (e.g. pinned snapshot views), so
// resetting an arena cannot corrupt data owned by other subsystems.
//
// An Arena is not safe for concurrent use; attach one per single-threaded
// execution context (a training step's graph, a serving scheduler).
type Arena struct {
	free   map[int][]*Matrix // keyed by slab capacity class (power of two)
	used   []*Matrix
	poison bool
}

// arenaMinClass is the smallest slab capacity; tiny matrices (scalars, bias
// rows) all land in one class instead of one per width.
const arenaMinClass = 8

// arenaPoisonEnv force-enables poisoning for every arena in the process; use
// it to flush use-after-Reset bugs out of any binary without a rebuild.
const arenaPoisonEnv = "TASER_ARENA_POISON"

// NewArena returns an empty arena. Poison debugging is off unless the
// TASER_ARENA_POISON environment variable is non-empty.
func NewArena() *Arena {
	return &Arena{
		free:   make(map[int][]*Matrix),
		poison: os.Getenv(arenaPoisonEnv) != "",
	}
}

// SetPoison toggles the debug mode: on Reset every returned slab is filled
// with NaN, so any stale reference that outlives its checkout reads NaN and
// surfaces immediately (losses, gradients and predictions all go NaN) instead
// of silently consuming the next step's data. Legitimate reuse is unaffected:
// Get zero-fills before handing a slab back out.
func (a *Arena) SetPoison(on bool) { a.poison = on }

// classOf rounds n up to the slab capacity class.
func classOf(n int) int {
	c := arenaMinClass
	for c < n {
		c <<= 1
	}
	return c
}

// Get checks out a zeroed r×c matrix. The result is indistinguishable from
// tensor.New(r, c) and is owned by the caller until the next Reset.
func (a *Arena) Get(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: Arena.Get(%d, %d) with negative dimension", r, c))
	}
	n := r * c
	cls := classOf(n)
	var m *Matrix
	if list := a.free[cls]; len(list) > 0 {
		m = list[len(list)-1]
		list[len(list)-1] = nil
		a.free[cls] = list[:len(list)-1]
		m.Resize(r, c) // zero-fills; see Matrix.Resize
	} else {
		m = &Matrix{Rows: r, Cols: c, Data: make([]float64, n, cls)}
	}
	a.used = append(a.used, m)
	return m
}

// Reset ends every outstanding checkout: all matrices handed out since the
// previous Reset return to their free lists (poisoned with NaN when the debug
// mode is on). Matrices obtained before Reset must not be used afterwards.
func (a *Arena) Reset() {
	for i, m := range a.used {
		if a.poison {
			for j := range m.Data {
				m.Data[j] = math.NaN()
			}
		}
		cls := classOf(cap(m.Data))
		a.free[cls] = append(a.free[cls], m)
		a.used[i] = nil
	}
	a.used = a.used[:0]
}

// InUse reports the number of outstanding checkouts (for tests and metrics).
func (a *Arena) InUse() int { return len(a.used) }

// FreeSlabs reports the total number of matrices parked on free lists.
func (a *Arena) FreeSlabs() int {
	n := 0
	for _, list := range a.free {
		n += len(list)
	}
	return n
}
