package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"taser/internal/mathx"
)

func TestSoftmaxRows(t *testing.T) {
	src := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	dst := New(2, 3)
	SoftmaxRowsInto(dst, src)
	// Row 0: known values.
	e1, e2, e3 := math.Exp(1.0), math.Exp(2.0), math.Exp(3.0)
	sum := e1 + e2 + e3
	want := []float64{e1 / sum, e2 / sum, e3 / sum}
	for j, w := range want {
		if math.Abs(dst.At(0, j)-w) > 1e-12 {
			t.Fatalf("softmax[0][%d]=%v want %v", j, dst.At(0, j), w)
		}
	}
	// Row 1: overflow-safe uniform.
	for j := 0; j < 3; j++ {
		if math.Abs(dst.At(1, j)-1.0/3) > 1e-12 {
			t.Fatal("softmax must be stable for large inputs")
		}
	}
}

func TestSoftmaxRowsSumToOneProperty(t *testing.T) {
	rng := mathx.NewRNG(11)
	err := quick.Check(func(seed uint64) bool {
		r := 1 + int(seed%6)
		c := 1 + int((seed>>8)%8)
		src := Randn(r, c, 3, rng)
		dst := New(r, c)
		SoftmaxRowsInto(dst, src)
		for i := 0; i < r; i++ {
			var s float64
			for _, v := range dst.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLayerNormRows(t *testing.T) {
	src := FromSlice(1, 4, []float64{1, 2, 3, 4})
	g := New(1, 4)
	g.Fill(1)
	b := New(1, 4)
	dst := New(1, 4)
	mean := make([]float64, 1)
	invStd := make([]float64, 1)
	LayerNormRowsInto(dst, src, g, b, mean, invStd, 1e-5)
	var s, ss float64
	for _, v := range dst.Row(0) {
		s += v
		ss += v * v
	}
	if math.Abs(s) > 1e-9 {
		t.Fatalf("normalized row mean %v != 0", s/4)
	}
	if math.Abs(ss/4-1) > 1e-3 {
		t.Fatalf("normalized row var %v != 1", ss/4)
	}
	if mean[0] != 2.5 {
		t.Fatalf("saved mean %v", mean[0])
	}
}

func TestLayerNormGainBias(t *testing.T) {
	src := FromSlice(1, 2, []float64{-1, 1})
	g := FromSlice(1, 2, []float64{2, 2})
	b := FromSlice(1, 2, []float64{5, 5})
	dst := New(1, 2)
	LayerNormRowsInto(dst, src, g, b, nil, nil, 0)
	if math.Abs(dst.At(0, 0)-3) > 1e-9 || math.Abs(dst.At(0, 1)-7) > 1e-9 {
		t.Fatalf("gain/bias application: %v", dst.Row(0))
	}
}

func TestGatherScatterRoundtrip(t *testing.T) {
	src := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	idx := []int32{2, 0, 2}
	dst := New(3, 2)
	GatherRowsInto(dst, src, idx)
	if dst.At(0, 0) != 5 || dst.At(1, 0) != 1 || dst.At(2, 1) != 6 {
		t.Fatalf("gather: %v", dst)
	}
	acc := New(3, 2)
	ScatterAddRows(acc, dst, idx)
	// Row 2 received rows 0 and 2 of dst: (5+5, 6+6); row 0 received (1,2).
	if acc.At(2, 0) != 10 || acc.At(0, 0) != 1 || acc.At(1, 0) != 0 {
		t.Fatalf("scatter: %v", acc)
	}
}

func TestConcatAndSliceCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	dst := New(2, 3)
	ConcatColsInto(dst, a, b)
	want := FromSlice(2, 3, []float64{1, 3, 4, 2, 5, 6})
	if !dst.Equal(want, 0) {
		t.Fatalf("concat: %v", dst)
	}
	back := New(2, 2)
	SliceColsInto(back, dst, 1, 3)
	if !back.Equal(b, 0) {
		t.Fatal("slice must invert concat")
	}
}

func TestGroupMean(t *testing.T) {
	src := FromSlice(4, 2, []float64{1, 2, 3, 4, 10, 20, 30, 40})
	dst := New(2, 2)
	GroupMeanInto(dst, src, 2)
	want := FromSlice(2, 2, []float64{2, 3, 20, 30})
	if !dst.Equal(want, 1e-12) {
		t.Fatalf("group mean: %v", dst)
	}
}

func TestGroupedScore(t *testing.T) {
	// 2 groups of 2 keys, d=2.
	q := FromSlice(2, 2, []float64{1, 0, 0, 1})
	keys := FromSlice(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	scores := New(2, 2)
	GroupedScoreInto(scores, q, keys, 2)
	want := FromSlice(2, 2, []float64{1, 3, 6, 8})
	if !scores.Equal(want, 1e-12) {
		t.Fatalf("grouped score: %v", scores)
	}
}

func TestGroupedWeightedSum(t *testing.T) {
	w := FromSlice(2, 2, []float64{0.5, 0.5, 1, 0})
	vals := FromSlice(4, 2, []float64{2, 4, 6, 8, 1, 1, 9, 9})
	dst := New(2, 2)
	GroupedWeightedSumInto(dst, w, vals, 2)
	want := FromSlice(2, 2, []float64{4, 6, 1, 1})
	if !dst.Equal(want, 1e-12) {
		t.Fatalf("grouped weighted sum: %v", dst)
	}
}

func TestGroupedMatMulLeftMatchesPerGroupMatMul(t *testing.T) {
	rng := mathx.NewRNG(12)
	const groups, k, k2, c = 3, 4, 5, 6
	w := Randn(k2, k, 1, rng)
	src := Randn(groups*k, c, 1, rng)
	dst := New(groups*k2, c)
	GroupedMatMulLeftInto(dst, w, src, k)
	for g := 0; g < groups; g++ {
		block := FromSlice(k, c, src.Data[g*k*c:(g+1)*k*c])
		want := MatMul(w, block)
		got := FromSlice(k2, c, dst.Data[g*k2*c:(g+1)*k2*c])
		if !got.Equal(want, 1e-10) {
			t.Fatalf("group %d mismatch", g)
		}
	}
}

func TestGroupedShapePanics(t *testing.T) {
	cases := []func(){
		func() { GroupMeanInto(New(2, 2), New(5, 2), 2) },
		func() { GroupedScoreInto(New(2, 2), New(2, 3), New(4, 2), 2) },
		func() { GroupedWeightedSumInto(New(2, 2), New(2, 3), New(4, 2), 2) },
		func() { GroupedMatMulLeftInto(New(4, 2), New(2, 3), New(4, 2), 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
