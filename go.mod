module taser

go 1.24
