// Package taser's root benchmark file wires every paper experiment into
// `go test -bench`. Two kinds of benchmarks live here:
//
//   - Micro-benchmarks of the mechanisms behind each figure/table
//     (neighbor finders for Fig. 3a, cache policies for Fig. 3b / Table III,
//     epoch phases for Fig. 1 / Table III, variants for Table I).
//   - BenchmarkExperiment* wrappers that run the internal/bench generators
//     at a miniature scale so `go test -bench=.` exercises every reported
//     experiment end to end. Full-scale reproductions are run with
//     cmd/taser-bench (see EXPERIMENTS.md).
package taser_test

import (
	"io"
	"testing"

	"taser/internal/adaptive"
	"taser/internal/bench"
	"taser/internal/cache"
	"taser/internal/datasets"
	"taser/internal/device"
	"taser/internal/mathx"
	"taser/internal/sampler"
	"taser/internal/train"
)

// benchDataset is shared by finder/cache micro-benchmarks.
func benchDataset(b *testing.B) *datasets.Dataset {
	b.Helper()
	return datasets.Reddit(0.2, 1)
}

func benchTargets(ds *datasets.Dataset, n int, seed uint64) []sampler.Target {
	rng := mathx.NewRNG(seed)
	targets := make([]sampler.Target, n)
	maxT := ds.Graph.Events[len(ds.Graph.Events)-1].Time
	for i := range targets {
		targets[i] = sampler.Target{
			Node: int32(rng.Intn(ds.Spec.NumNodes)),
			Time: maxT * (0.5 + 0.5*rng.Float64()),
		}
	}
	return targets
}

// --- Fig. 3(a): neighbor finders ---

func benchmarkFinder(b *testing.B, mk func(ds *datasets.Dataset) sampler.Finder, chrono bool) {
	ds := benchDataset(b)
	f := mk(ds)
	targets := benchTargets(ds, 512, 7)
	if chrono {
		// The TGL finder wants non-decreasing batch times.
		for i := range targets {
			targets[i].Time = ds.Graph.Events[len(ds.Graph.Events)-1].Time
		}
	}
	var out sampler.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Sample(targets, 10, sampler.Uniform, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFinderOrigin(b *testing.B) {
	benchmarkFinder(b, func(ds *datasets.Dataset) sampler.Finder {
		return sampler.NewOriginFinder(ds.TCSR, mathx.NewRNG(1))
	}, false)
}

func BenchmarkFinderTGL(b *testing.B) {
	benchmarkFinder(b, func(ds *datasets.Dataset) sampler.Finder {
		return sampler.NewTGLFinder(ds.TCSR, mathx.NewRNG(1))
	}, true)
}

func BenchmarkFinderGPU(b *testing.B) {
	benchmarkFinder(b, func(ds *datasets.Dataset) sampler.Finder {
		return sampler.NewGPUFinder(ds.TCSR, device.New(), 1)
	}, false)
}

// --- Fig. 3(b) / Table III: cache policies ---

func benchmarkCachePolicy(b *testing.B, mk func(rows, k int) cache.Policy) {
	const rows, k, accesses = 20000, 2000, 100000
	rng := mathx.NewRNG(2)
	weights := make([]float64, rows)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	alias := mathx.NewAlias(weights)
	stream := make([]int32, accesses)
	for i := range stream {
		stream[i] = int32(alias.Draw(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := mk(rows, k)
		for _, id := range stream {
			pol.Access(id)
		}
		pol.EndEpoch()
	}
}

func BenchmarkCacheFrequency(b *testing.B) {
	benchmarkCachePolicy(b, func(rows, k int) cache.Policy {
		return cache.NewFrequency(rows, k, 0.7)
	})
}

func BenchmarkCacheLRU(b *testing.B) {
	benchmarkCachePolicy(b, func(rows, k int) cache.Policy {
		return cache.NewLRU(k)
	})
}

// --- Fig. 1 / Table III: one training step per pipeline stage ---

func benchmarkTrainStep(b *testing.B, cfg train.Config) {
	ds := datasets.Wikipedia(0.1, 3)
	cfg.Hidden, cfg.TimeDim, cfg.BatchSize = 16, 8, 64
	cfg.MaxEvalEdges = 10
	tr, err := train.New(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	// Steady state is the quantity of interest: a few warmup steps fill the
	// buffer pools, the autograd tape and the arena shape classes so allocs/op
	// reports the recycled path, not the one-time warmup.
	for i := 0; i < 5; i++ {
		tr.TrainStep()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainStep()
	}
}

// benchmarkTrainStepPipelined is benchmarkTrainStep through the asynchronous
// prefetch loop: per-op time approaches max(build, PP) instead of build + PP
// once GOMAXPROCS ≥ 2 (the producer needs its own core to hide behind PP).
func benchmarkTrainStepPipelined(b *testing.B, cfg train.Config) {
	ds := datasets.Wikipedia(0.1, 3)
	cfg.Hidden, cfg.TimeDim, cfg.BatchSize = 16, 8, 64
	cfg.MaxEvalEdges = 10
	tr, err := train.New(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	p := tr.NewPipeline(0)
	b.Cleanup(p.Close)
	for i := 0; i < 5; i++ { // steady state, as in benchmarkTrainStep
		if _, ok := p.Step(); !ok {
			b.Fatal("pipeline exhausted during warmup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Step(); !ok {
			b.Fatal("pipeline exhausted")
		}
	}
}

// BenchmarkStepBaselineOrigin is Table III's "Baseline" row.
func BenchmarkStepBaselineOrigin(b *testing.B) {
	benchmarkTrainStep(b, train.Config{Model: train.ModelTGAT, Finder: train.FinderOrigin})
}

// BenchmarkStepGPUFinder is Table III's "+GPU NF" row.
func BenchmarkStepGPUFinder(b *testing.B) {
	benchmarkTrainStep(b, train.Config{Model: train.ModelTGAT, Finder: train.FinderGPU})
}

// BenchmarkStepGPUFinderCache is Table III's "+20% Cache" row.
func BenchmarkStepGPUFinderCache(b *testing.B) {
	benchmarkTrainStep(b, train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, CacheRatio: 0.2,
	})
}

// BenchmarkStepTASER is the full pipeline with both adaptive components
// (Table I's TASER row / Table III's AS column).
func BenchmarkStepTASER(b *testing.B) {
	benchmarkTrainStep(b, train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, CacheRatio: 0.2,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderGATv2,
	})
}

// BenchmarkStepGraphMixer covers the second backbone.
func BenchmarkStepGraphMixer(b *testing.B) {
	benchmarkTrainStep(b, train.Config{
		Model: train.ModelGraphMixer, Finder: train.FinderGPU, CacheRatio: 0.2,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderLinear,
	})
}

// --- pipelined variants of the step benchmarks (this repo's async loop) ---

// BenchmarkStepPipelinedGPUFinderCache is the pipelined counterpart of
// BenchmarkStepGPUFinderCache (compare the two with benchstat).
func BenchmarkStepPipelinedGPUFinderCache(b *testing.B) {
	benchmarkTrainStepPipelined(b, train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, CacheRatio: 0.2,
	})
}

// BenchmarkStepPipelinedTASER is the pipelined counterpart of
// BenchmarkStepTASER: the Selection resolves consumer-side, candidate
// staging overlaps with PP, and the selector sees bounded-stale updates.
func BenchmarkStepPipelinedTASER(b *testing.B) {
	benchmarkTrainStepPipelined(b, train.Config{
		Model: train.ModelTGAT, Finder: train.FinderGPU, CacheRatio: 0.2,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderGATv2,
	})
}

// BenchmarkStepPipelinedGraphMixer is the pipelined counterpart of
// BenchmarkStepGraphMixer.
func BenchmarkStepPipelinedGraphMixer(b *testing.B) {
	benchmarkTrainStepPipelined(b, train.Config{
		Model: train.ModelGraphMixer, Finder: train.FinderGPU, CacheRatio: 0.2,
		AdaBatch: true, AdaNeighbor: true, Decoder: adaptive.DecoderLinear,
	})
}

// --- end-to-end experiment wrappers ---

func miniOptions() bench.Options {
	return bench.Options{
		Out: io.Discard, Scale: 0.02, Epochs: 1, Hidden: 8, TimeDim: 6,
		BatchSize: 64, MaxEvalEdges: 10, Seed: 5, Datasets: []string{"wikipedia"},
	}
}

func benchmarkExperiment(b *testing.B, fn func(bench.Options) error) {
	o := miniOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentTable1(b *testing.B) { benchmarkExperiment(b, bench.Table1) }

func BenchmarkExperimentPipeline(b *testing.B) { benchmarkExperiment(b, bench.Pipeline) }

// BenchmarkExperimentServe smoke-runs the online-serving load test at a tiny
// profile (two client counts, few requests) so `go test -bench=.` exercises
// ingest + micro-batched serving + the embedding cache end to end.
func BenchmarkExperimentServe(b *testing.B) {
	o := miniOptions()
	o.ServeClients = []int{1, 4}
	o.ServeRequests = 40
	o.ServeIngestRate = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Serve(o); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkExperimentTable2(b *testing.B)   { benchmarkExperiment(b, bench.Table2) }
func BenchmarkExperimentTable3(b *testing.B)   { benchmarkExperiment(b, bench.Table3) }
func BenchmarkExperimentFig1(b *testing.B)     { benchmarkExperiment(b, bench.Fig1) }
func BenchmarkExperimentFig3a(b *testing.B)    { benchmarkExperiment(b, bench.Fig3a) }
func BenchmarkExperimentFig3b(b *testing.B)    { benchmarkExperiment(b, bench.Fig3b) }

func BenchmarkExperimentFig4(b *testing.B) {
	// Fig. 4 trains a 20-cell grid; keep the per-iteration cost bounded.
	o := miniOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Fig4(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentAblations(b *testing.B) {
	o := miniOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fn := range []func(bench.Options) error{
			bench.AblationEncoder, bench.AblationDecoder, bench.AblationCache,
		} {
			if err := fn(o); err != nil {
				b.Fatal(err)
			}
		}
	}
}
