# Build / test / bench entry points (see DESIGN.md and EXPERIMENTS.md).

GO ?= go

.PHONY: all build test bench bench-full bench-ingest bench-alloc bench-kernels bench-finetune bench-recover bench-replicate vet serve loadtest loadtest-http repl-smoke shard-smoke bench-shards bce-check bench-overload overload-smoke

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 verification: vet plus the full suite under the race detector
# (the pipelined training loop is concurrent; -race is the contract).
# internal/bench's end-to-end smoke tests run every experiment, which is
# slow under -race on few-core machines — hence the generous timeout.
test: vet
	$(GO) test -race -timeout=45m ./...

# Smoke-check every step benchmark with allocation accounting. The output is
# benchstat-compatible: save it per commit and compare with
#   benchstat old.txt new.txt
bench:
	$(GO) test -run='^$$' -bench=Step -benchmem -benchtime=1x

# Steady-state numbers for the step and build-path benchmarks (slower).
bench-full:
	$(GO) test -run='^$$' -bench='Step|Finder' -benchmem -benchtime=20x
	$(GO) test ./internal/train -run='^$$' -bench=Build -benchmem -benchtime=200x

# Online inference: pretrain briefly, then serve the HTTP/JSON API
# (see cmd/taser-serve for endpoints and DESIGN.md §5 for the architecture).
# Set WAL_DIR=/path to serve durably: every ingested event is write-ahead
# logged and the engine recovers the stream on restart (DESIGN.md §9).
serve:
	$(GO) run ./cmd/taser-serve -dataset wikipedia -scale 0.1 -epochs 2 -addr :8080 $(if $(WAL_DIR),-wal-dir $(WAL_DIR))

# Closed-loop load test of the serving subsystem (in-process, no HTTP):
# Zipfian request mix + streaming ingest; reports p50/p99, QPS, hit rate.
loadtest:
	$(GO) run ./cmd/taser-bench -exp serve -scale 0.05

# Streaming-ingest publication cost: incremental snapshots vs the full
# O(events) repack, across stream lengths (see EXPERIMENTS.md).
bench-ingest:
	$(GO) run ./cmd/taser-bench -exp ingest

# Arena-backed execution: allocs/step and allocs/request before/after warmup
# for the training step, micro-batched serving and the online fine-tune step
# (see DESIGN.md §7/§8).
bench-alloc:
	$(GO) run ./cmd/taser-bench -exp alloc

# Raw-speed floor: blocked vs seed MatMul kernels on the model shapes
# (ns/op, GFLOP/s), the dense/sparse density crossover, and the quantized
# serving path's footprint, latency and MRR delta (see DESIGN.md §13).
bench-kernels:
	$(GO) run ./cmd/taser-bench -exp kernels

# Bounds-check-elimination guard: rebuild internal/tensor with
# -d=ssa/check_bce and fail if the residual check sites drift from
# scripts/bce_allowlist.txt (run with -update after intentional changes).
bce-check:
	bash scripts/bce_check.sh

# Online fine-tuning on a drifted stream: frozen vs fine-tuned prequential
# MRR, with weight publication measured as non-blocking (see DESIGN.md §8).
bench-finetune:
	$(GO) run ./cmd/taser-bench -exp finetune

# Durability: recovery time vs stream length (crash = pure WAL replay,
# clean = checkpoint load) and durable-ingest overhead (group commit vs
# fsync-per-event) — see DESIGN.md §9 and EXPERIMENTS.md.
bench-recover:
	$(GO) run ./cmd/taser-bench -exp recover

# Replication: follower catch-up time vs stream length (WAL tail vs shipped
# checkpoint) and steady-state lag vs leader ingest rate — see DESIGN.md §11
# and EXPERIMENTS.md.
bench-replicate:
	$(GO) run ./cmd/taser-bench -exp replicate

# Overload: open-loop (constant-arrival-rate) burst against a static engine
# vs one running the SLO controller + admission gate (DESIGN.md §14). The
# first run offers 2× the calibrated sustainable rate (the collapse-vs-SLO
# comparison); the second forces the shed path with a far-offered rate and a
# tiny queue so 429 + Retry-After accounting is exercised (EXPERIMENTS.md).
bench-overload:
	$(GO) run ./cmd/taser-bench -exp loadhttp -open
	$(GO) run ./cmd/taser-bench -exp loadhttp -open -open-rate 10000 -open-queue 4

# Overload smoke test over localhost: flag validation, a taser-serve with
# tiny admission queues, a parallel burst that must shed with 429 +
# Retry-After (mirrored in /v1/stats), post-burst recovery, and a SIGTERM
# mid-burst that must drain cleanly (DESIGN.md §14).
overload-smoke:
	bash scripts/overload_smoke.sh

# Two-process replication smoke test over localhost: leader + follower,
# hard leader kill, promotion, demoted store re-joining (DESIGN.md §11).
repl-smoke:
	bash scripts/repl_smoke.sh

# Sharded-serving smoke test over localhost: a 4-shard fleet, mixed
# ingest/predict, kill -9, -recover restart, watermark + prediction
# continuity (DESIGN.md §12).
shard-smoke:
	bash scripts/shard_smoke.sh

# Shard-count sweep of the HTTP load test: one self-hosted GraphMixer fleet
# per K, per-shard throughput from /v1/stats shards[] (DESIGN.md §12,
# EXPERIMENTS.md for the recorded 1-CPU run).
bench-shards:
	$(GO) run ./cmd/taser-bench -exp loadhttp -shards 1,2,4

# HTTP-mode load test: build taser-serve and taser-bench, start a real server
# (short pretraining at small scale), drive /v1/ingest + /v1/predict +
# /v1/embed over HTTP with closed-loop clients, then shut the server down.
loadtest-http:
	$(GO) build -o /tmp/taser-serve ./cmd/taser-serve
	$(GO) build -o /tmp/taser-bench ./cmd/taser-bench
	@/tmp/taser-serve -dataset wikipedia -scale 0.05 -epochs 1 -addr 127.0.0.1:8091 & \
	SRV=$$!; \
	/tmp/taser-bench -exp loadhttp -serve-addr http://127.0.0.1:8091; \
	STATUS=$$?; kill $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; exit $$STATUS
